//! `simlint` — the workspace's determinism/invariant static-analysis pass.
//!
//! The paper's figures are reproducible only because every run is
//! bit-deterministic. The golden-fingerprint tests catch a regression *after*
//! it changed results; this crate prevents the usual sources from entering
//! the tree at all. It is a hermetic, dependency-free line/token-level
//! scanner in the spirit of the in-repo `minijson`: a small hand-rolled
//! lexer strips string literals and comments, then per-line token rules
//! flag constructs that are forbidden in simulation code.
//!
//! # Rules
//!
//! | id | forbids | scope |
//! |----|---------|-------|
//! | D1 | `HashMap`/`HashSet` with the default `RandomState` hasher | sim crates |
//! | D2 | wall-clock reads (`Instant`, `SystemTime`) | everywhere but `bench` |
//! | D3 | ambient randomness (`thread_rng`, `rand::`, `getrandom`, `RandomState`) | everywhere |
//! | D4 | lossy float→integer casts on time/byte quantities | sim crates, except `units.rs` |
//! | D5 | `.unwrap()` / `.expect("")` without an invariant message | sim crates |
//! | D6 | fault-injection randomness outside the dedicated `FAULT_STREAM` | sim crates |
//!
//! *Sim crates* are `dcsim`, `netsim`, `core` (faircc), `cc-*`, `fairsim`,
//! and the workspace root's `src/`, `tests/`, and `examples/`. The support
//! crates (`minijson`, `workloads`, `metrics`, `fluid`, `simlint` itself)
//! and the timing harness (`bench`, which legitimately reads the wall
//! clock) get the reduced rule set shown above.
//!
//! # Suppression
//!
//! A finding is suppressed by a comment on the same line, or on a
//! comment-only line directly above:
//!
//! ```text
//! let k = (us / interval).ceil() as usize; // simlint: allow(D4) — bounded count
//! ```
//!
//! Multiple ids separate with commas: `simlint: allow(D1, D5)`.
//!
//! # Heuristics, stated plainly
//!
//! The D-family is a token scanner, not a type checker. D4 in particular
//! flags a line only when an integer cast (`as u64` and friends)
//! co-occurs with float evidence on the same line (`f64`/`f32` in any
//! token, or a `.round()`/`.ceil()`/`.floor()` call). Casts split across
//! lines can evade it; the runtime `sim-audit` layer is the backstop for
//! what the scanner cannot see.
//!
//! # simlint v2: the semantic pass
//!
//! On top of the line scanner sits a symbol-aware pass: a hand-rolled,
//! dependency-free recursive-descent parser ([`parse`]) for the Rust
//! subset the workspace uses produces per-file ASTs ([`ast`]) plus a
//! workspace symbol table ([`sym`]: struct fields, enum variants,
//! operator impls, method signatures, use-paths). Local type inference
//! with unit taint ([`infer`]) then powers three rule families
//! ([`sem`]):
//!
//! | id | forbids | scope |
//! |----|---------|-------|
//! | U1 | arithmetic mixing `Nanos`/`Bytes`/`BitRate` with raw integers or each other (unless an operator impl exists) | sim crates, except `units.rs`/`time.rs` |
//! | U2 | `.0` newtype escapes (use `.as_u64()`) | sim crates, except `units.rs`/`time.rs` |
//! | U3 | raw-literal unit construction (`Nanos(80)`) | sim crates, non-test |
//! | O1 | unchecked `+`/`*`/`+=` on u64 time/byte quantities | dcsim/netsim hot paths, non-test |
//! | E1 | unguarded `_` arms in matches over workspace protocol enums | sim crates, non-test |
//! | S1 | stale `simlint: allow(...)` comments that suppress nothing | everywhere |
//!
//! Only lexer errors and unbalanced delimiters are fatal (exit code 2);
//! everything else degrades to opaque AST nodes, and every check fires
//! only on positively identified types, so incomplete inference means
//! silence rather than noise. Findings with mechanical rewrites carry a
//! [`Fix`]; [`fix_source_set`]/[`fix_tree`] apply them to a fixpoint so
//! `--fix` is idempotent. [`emit`] renders JSON and SARIF 2.1.0 for CI.
//!
//! # simlint v3/v4: the interprocedural passes
//!
//! The semantic walk also records per-function facts ([`callgraph`])
//! linked into a workspace call graph. Two rule families ride it: the
//! P family ([`flow`]) flags parallel-readiness hazards (shared mutable
//! state, order-unstable iteration feeding scheduling/metrics, RNG
//! stream discipline, bare-time heap keys, order-sensitive float
//! accumulation), and the A family ([`cost`]) flags per-event cost —
//! heap allocation reachable from the engine hot roots (A1), boxed
//! event payloads that fit inline (A2), collect-then-iterate
//! materialization (A3), and large by-value parameters on hot call
//! edges (A4). P/A findings carry witness call chains from a hot root.
//!
//! Deliberate, justified allocations are managed by a committed ratchet
//! file ([`Baseline`], `simlint --baseline FILE`): CI fails only on
//! findings not present in the baseline, so the sweep can be staged
//! without ever letting new cost regressions in.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod callgraph;
pub mod cost;
pub mod emit;
pub mod fix;
pub mod flow;
pub mod infer;
pub mod lex;
pub mod parse;
pub mod sem;
pub mod sym;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One of the determinism/invariant rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Default-hasher `HashMap`/`HashSet` in sim crates.
    D1,
    /// Wall-clock reads outside `bench`.
    D2,
    /// Ambient randomness anywhere.
    D3,
    /// Lossy float→integer casts on unit quantities outside `units.rs`.
    D4,
    /// `.unwrap()` / empty-message `.expect()` in sim crates.
    D5,
    /// Fault-injection randomness not drawn from the dedicated stream.
    D6,
    /// Arithmetic mixing unit newtypes with raw integers or each other.
    U1,
    /// `.0` escapes of unit newtypes outside the unit-definition files.
    U2,
    /// Raw-literal unit construction outside the unit-definition files.
    U3,
    /// Unchecked `+`/`*`/`+=` on u64 quantities in dcsim/netsim.
    O1,
    /// Wildcard `_` match arms over workspace protocol enums.
    E1,
    /// Shared mutable state reachable from engine hot paths.
    P1,
    /// Order-unstable iteration feeding event scheduling or metrics.
    P2,
    /// DetRng stream discipline violated across call chains.
    P3,
    /// Event heaps keyed by bare time with no sequence tiebreak.
    P4,
    /// Order-sensitive float accumulation in reduction positions.
    P5,
    /// Heap allocation in functions reachable from engine hot roots.
    A1,
    /// Boxed event payloads whose concrete types fit an inline variant.
    A2,
    /// Collect-then-iterate materialization on hot call chains.
    A3,
    /// Large structs passed by value across hot call edges.
    A4,
    /// Stale `simlint: allow(...)` comments that suppress nothing.
    S1,
}

impl Rule {
    /// Every rule, in id order.
    pub const ALL: [Rule; 21] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::D5,
        Rule::D6,
        Rule::U1,
        Rule::U2,
        Rule::U3,
        Rule::O1,
        Rule::E1,
        Rule::P1,
        Rule::P2,
        Rule::P3,
        Rule::P4,
        Rule::P5,
        Rule::A1,
        Rule::A2,
        Rule::A3,
        Rule::A4,
        Rule::S1,
    ];

    /// The short id used in reports and suppression comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::U1 => "U1",
            Rule::U2 => "U2",
            Rule::U3 => "U3",
            Rule::O1 => "O1",
            Rule::E1 => "E1",
            Rule::P1 => "P1",
            Rule::P2 => "P2",
            Rule::P3 => "P3",
            Rule::P4 => "P4",
            Rule::P5 => "P5",
            Rule::A1 => "A1",
            Rule::A2 => "A2",
            Rule::A3 => "A3",
            Rule::A4 => "A4",
            Rule::S1 => "S1",
        }
    }

    /// The rule family letter (`'D'`, `'U'`, `'O'`, `'E'`, `'P'`, `'A'`,
    /// `'S'`).
    pub fn family(self) -> char {
        self.id().chars().next().expect("rule ids are non-empty")
    }

    /// One-line description for `--explain` output.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => {
                "std HashMap/HashSet iterate in RandomState order; use BTreeMap/BTreeSet \
                 or an explicitly seeded hasher in sim crates"
            }
            Rule::D2 => {
                "wall-clock reads (Instant/SystemTime) make sim logic time-dependent; \
                 only the bench crate may time things"
            }
            Rule::D3 => {
                "ambient randomness (thread_rng/rand::/getrandom/RandomState) breaks \
                 seeded reproducibility; use dcsim::DetRng"
            }
            Rule::D4 => {
                "float→integer casts on time/byte quantities truncate platform-sensitively; \
                 route them through the allowlisted units.rs helpers"
            }
            Rule::D5 => {
                ".unwrap()/.expect(\"\") hides the violated invariant; use a typed error \
                 or .expect(\"why this cannot fail\")"
            }
            Rule::D6 => {
                "fault-injection code must draw all randomness from the dedicated \
                 FAULT_STREAM (netsim::fault::FAULT_STREAM); seeding a private DetRng \
                 or borrowing streams 0-3 couples fault draws to the workload/ECMP/RED \
                 sequences and breaks the zero-cost-when-off contract"
            }
            Rule::U1 => {
                "arithmetic mixing Nanos/Bytes/BitRate with raw integers (or with each \
                 other) bypasses unit safety; convert explicitly via named constructors \
                 or .as_u64()"
            }
            Rule::U2 => {
                ".0 escapes a unit newtype into an untyped u64 invisibly; \
                 .as_u64() names the escape so it can be audited"
            }
            Rule::U3 => {
                "raw-literal unit construction (Nanos(80)) bypasses the named \
                 constructors that document the scale; use Nanos::from_ns / \
                 Bytes::new / BitRate::from_bps or a unit constant"
            }
            Rule::O1 => {
                "unchecked +/*/+= on u64 time/byte quantities in dcsim/netsim hot \
                 paths can overflow silently; use saturating_*/checked_* or a \
                 justified allow"
            }
            Rule::E1 => {
                "a wildcard _ arm over a workspace protocol enum silently swallows \
                 newly added variants; enumerate the variants explicitly"
            }
            Rule::P1 => {
                "mutable statics and interior-mutability cells reachable from engine \
                 hot paths become cross-thread shared state under the parallel engine; \
                 thread the state through &mut instead"
            }
            Rule::P2 => {
                "HashMap/HashSet iteration order feeds event scheduling or metrics \
                 aggregation (possibly through call chains); shard merging then \
                 depends on hasher state — use BTreeMap/BTreeSet or sort first"
            }
            Rule::P3 => {
                "DetRng stream discipline violated across call chains: a subsystem \
                 draws from another subsystem's stream or seeds a private generator, \
                 so per-shard replay diverges; use the named *_STREAM constants"
            }
            Rule::P4 => {
                "an event heap keyed by bare time has no pop order for equal \
                 timestamps; the parallel merge needs a (time, seq) key with a \
                 monotonic sequence number"
            }
            Rule::P5 => {
                "float accumulation whose operand order depends on map iteration \
                 rounds differently per run; sort the operands or accumulate in \
                 integers"
            }
            Rule::A1 => {
                "heap allocation (Box::new, growing Vec/String, format!, clone of \
                 heap-owning types) in functions reachable from engine hot roots \
                 dominates per-event cost at scale; pool, pre-size, or inline instead"
            }
            Rule::A2 => {
                "a boxed event payload whose concrete type fits an inline enum \
                 variant costs one heap round-trip per event; store the payload by \
                 value or as a slab handle"
            }
            Rule::A3 => {
                "collect-then-iterate materializes an intermediate Vec on a hot \
                 chain; fuse the iterator chain instead"
            }
            Rule::A4 => {
                "passing a large struct by value across a hot call edge copies it \
                 on every call; pass a reference"
            }
            Rule::S1 => {
                "a simlint: allow(...) comment that no longer suppresses anything is \
                 dead weight and hides future findings; delete it"
            }
        }
    }

    /// Long-form explanation for `--explain RULE`: what the rule catches,
    /// why it matters for the deterministic parallel engine, and how to fix
    /// findings.
    pub fn doc(self) -> &'static str {
        match self {
            Rule::D1 => {
                "D1 — default-hasher containers in sim crates.\n\n\
                 std's HashMap/HashSet seed their hasher from process entropy \
                 (RandomState), so iteration order differs between runs even with a \
                 fixed sim seed. Any logic that observes that order is silently \
                 nondeterministic.\n\n\
                 Fix: use BTreeMap/BTreeSet, or a HashMap with an explicitly seeded \
                 hasher if O(log n) is too slow."
            }
            Rule::D2 => {
                "D2 — wall-clock reads outside bench.\n\n\
                 Instant::now()/SystemTime::now() tie sim behavior to host timing. \
                 Simulated time must come only from the event clock.\n\n\
                 Fix: pass the sim clock in; only the bench crate may time things."
            }
            Rule::D3 => {
                "D3 — ambient randomness.\n\n\
                 thread_rng, rand::random, getrandom and RandomState draw from \
                 process entropy, breaking seeded reproducibility.\n\n\
                 Fix: draw from dcsim::DetRng, seeded from the scenario config."
            }
            Rule::D4 => {
                "D4 — lossy float→integer casts on unit quantities.\n\n\
                 `as u64` on a float-valued time/byte expression truncates, and the \
                 result can differ across platforms when the float computation does.\n\n\
                 Fix: route conversions through the audited units.rs helpers, or \
                 carry a justified allow with a reason."
            }
            Rule::D5 => {
                "D5 — unwrap/empty expect in sim crates.\n\n\
                 .unwrap() hides which invariant was violated when it fires.\n\n\
                 Fix: return a typed error, or .expect(\"why this cannot fail\")."
            }
            Rule::D6 => {
                "D6 — fault randomness off the dedicated stream.\n\n\
                 Fault injection must draw all randomness from FAULT_STREAM \
                 (netsim::fault) so that enabling faults does not perturb the \
                 workload/ECMP/RED draw sequences (the zero-cost-when-off \
                 contract).\n\n\
                 Fix: derive the fault RNG via rng.stream(FAULT_STREAM); never seed \
                 a private DetRng in fault code."
            }
            Rule::U1 => {
                "U1 — unit-mixing arithmetic.\n\n\
                 Adding Nanos to Bytes, or a unit newtype to a raw integer, bypasses \
                 the type discipline the newtypes exist for.\n\n\
                 Fix: convert explicitly via named constructors or .as_u64() at an \
                 audited boundary."
            }
            Rule::U2 => {
                "U2 — `.0` escapes of unit newtypes.\n\n\
                 Tuple-field access turns a typed quantity into an anonymous u64 with \
                 no searchable marker.\n\n\
                 Fix: call .as_u64(); the auto-fix rewrites `.0` mechanically."
            }
            Rule::U3 => {
                "U3 — raw-literal unit construction.\n\n\
                 `Nanos(80)` does not say 80 of what scale. Named constructors do.\n\n\
                 Fix: Nanos::from_ns/from_us/.., Bytes::new, BitRate::from_gbps, or \
                 a named constant."
            }
            Rule::O1 => {
                "O1 — unchecked u64 arithmetic in hot paths.\n\n\
                 dcsim/netsim hot paths multiply byte counts by rates; silent \
                 wraparound corrupts schedules rather than crashing.\n\n\
                 Fix: saturating_*/checked_*, or an allow naming the bound that \
                 makes overflow impossible."
            }
            Rule::E1 => {
                "E1 — wildcard arms over workspace protocol enums.\n\n\
                 `_` arms compile on, silently mishandling variants added later to \
                 workspace-owned enums (events, scheduler kinds, CC algorithms).\n\n\
                 Fix: enumerate the variants; the compiler then flags new ones."
            }
            Rule::P1 => {
                "P1 — shared mutable state reachable from engine hot paths.\n\n\
                 The planned parallel engine runs shards on worker threads. A \
                 `static mut`, a static Cell/RefCell/Mutex/atomic, or thread_local! \
                 state referenced from the run/step call graph either races or \
                 (under locks/atomics) makes results depend on thread interleaving \
                 — both break bit-identical replay.\n\n\
                 Findings carry a witness call chain from a hot root (run/step) to \
                 the referencing function.\n\n\
                 Fix: thread the state through &mut self / function parameters so \
                 each shard owns its copy; merge explicitly at barriers."
            }
            Rule::P2 => {
                "P2 — order-unstable iteration feeding scheduling or metrics.\n\n\
                 Iterating a HashMap/HashSet and scheduling events (or folding \
                 metrics) in that order makes the event timeline depend on hasher \
                 state. The interprocedural pass also catches chains: a helper \
                 returns values gathered in hash order and the caller schedules \
                 from them.\n\n\
                 Fix: switch the container to BTreeMap/BTreeSet (the auto-fix \
                 rewrites annotated local declarations) or sort before consuming. \
                 Sorting anywhere on the chain clears the taint."
            }
            Rule::P3 => {
                "P3 — DetRng stream discipline across call chains.\n\n\
                 Each subsystem owns one stream: 0 workload, 1 ECMP, 2 RED, \
                 3 feedback, 4 faults. A subsystem-marked function (or anything it \
                 calls) constructing DetRng::new(seed) or calling .stream(n) with \
                 the wrong n couples draw sequences between subsystems, so shards \
                 replay differently when one subsystem's draw count changes.\n\n\
                 D6 already polices fault code lexically; P3 generalizes the \
                 discipline to every subsystem, interprocedurally. Functions that \
                 legitimately distribute streams (naming a *_STREAM constant or \
                 fanning out two or more streams) are exempt.\n\n\
                 Fix: accept a DetRng handle from the caller, and name streams via \
                 the dcsim::rng *_STREAM constants instead of raw numbers."
            }
            Rule::P4 => {
                "P4 — event heaps keyed by bare time.\n\n\
                 BinaryHeap<Nanos> (or (Nanos, payload) with a non-integer second \
                 element) has no defined pop order for equal timestamps. The \
                 parallel engine merges per-shard queues by (time, seq); a heap \
                 without the seq slot cannot take part.\n\n\
                 Fix: key by (Nanos, u64, ..) with a monotonic sequence counter — \
                 dcsim::EventQueue is the reference implementation. The auto-fix \
                 inserts the u64 slot into annotated declarations."
            }
            Rule::P5 => {
                "P5 — order-sensitive float accumulation.\n\n\
                 Float addition is not associative; `sum += x` (or .fold(0.0, ..)) \
                 over a HashMap iteration — directly or via a helper that gathers \
                 in hash order — yields run-dependent low bits that compound in \
                 fairness metrics.\n\n\
                 Fix: iterate a BTree container, sort operands first, or accumulate \
                 in integer units (Nanos/Bytes) and convert once at the end."
            }
            Rule::A1 => {
                "A1 — heap allocation on the engine hot path.\n\n\
                 The fat-tree runs dispatch millions of events; ROADMAP item 5 \
                 measured per-event overhead (boxing, transient Vecs, clones) \
                 overtaking algorithmic order on the incast cell. A1 walks the \
                 call graph forward from the hot roots (run/run_with/run_watched/\
                 step, scheduler push/pop, port enqueue/dequeue) and reports \
                 Box::new, Vec construction and pushes without a reachable \
                 capacity reservation, String/format! allocation, and .clone() \
                 of heap-owning workspace types. Constructor/builder-named \
                 callees (new/build*/with_*/from_*/setup*/init*/default) \
                 terminate the walk — their cost is amortized setup — and in \
                 once-per-run roots (run*) only allocations inside loops fire. \
                 Sites inside loops escalate: they allocate every iteration.\n\n\
                 Findings carry a witness chain from the hot root to the \
                 allocating function.\n\n\
                 Fix: allocate from a pool/slab (netsim::PacketPool), pre-size \
                 with with_capacity/reserve (the auto-fix inserts a capacity \
                 when the loop bound is a sized local), inline payloads, or \
                 carry a justified allow / baseline entry for deliberate \
                 one-time growth."
            }
            Rule::A2 => {
                "A2 — boxed event payloads that fit inline.\n\n\
                 A Box<T> payload in a sim-scope event enum costs one heap \
                 allocation + pointer chase per event. When the symbol table \
                 shows T is a small workspace type (est. <= 128 bytes), the \
                 variant can hold T by value — or a Copy slab handle — and the \
                 event queue stays allocation-free. Boxed trait objects are \
                 flagged unconditionally: enumerate the concrete payload types \
                 as inline variants.\n\n\
                 Fix: store the payload by value, or replace the box with a \
                 generation-indexed pool handle (see netsim::packet::PacketHandle)."
            }
            Rule::A3 => {
                "A3 — collect-then-iterate on hot chains.\n\n\
                 `.collect::<Vec<_>>()` followed by `.into_iter()`/`.iter()` (or \
                 a for-loop over a fresh collect) materializes an intermediate \
                 Vec only to walk it once — a transient allocation per call on \
                 the hot path.\n\n\
                 Fix: fuse the chain (the auto-fix deletes a type-sound \
                 `.collect::<Vec<_>>().into_iter()` pair), or hoist the \
                 materialization out of the hot path if the double walk is \
                 intentional."
            }
            Rule::A4 => {
                "A4 — large structs by value across hot call edges.\n\n\
                 A parameter whose struct type the symbol table sizes above 64 \
                 bytes is memcpy'd on every call; on per-event call chains that \
                 is pure overhead.\n\n\
                 Fix: take &T (or &mut T), or shrink the struct (slab handles \
                 instead of inline buffers)."
            }
            Rule::S1 => {
                "S1 — stale allows.\n\n\
                 A `simlint: allow(RULE)` comment whose rule no longer fires on \
                 that line suppresses nothing today and a real finding tomorrow.\n\n\
                 Fix: delete it; the auto-fix does so mechanically."
            }
        }
    }

    /// Parse a rule id (used by suppression comments and `--rules`).
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim();
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }

    /// Parse a `--rules` filter entry: a rule id (`U2`) or a family
    /// letter (`U`). Returns every matching rule.
    pub fn parse_filter(s: &str) -> Option<Vec<Rule>> {
        let s = s.trim();
        if let Some(r) = Rule::parse(s) {
            return Some(vec![r]);
        }
        if s.len() == 1 {
            let fam = s.chars().next().expect("len checked");
            let rules: Vec<Rule> = Rule::ALL
                .into_iter()
                .filter(|r| r.family() == fam.to_ascii_uppercase())
                .collect();
            if !rules.is_empty() {
                return Some(rules);
            }
        }
        None
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A mechanical rewrite attached to a finding: replace the byte span
/// with the replacement text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Byte range in the file's source text.
    pub span: lex::Span,
    /// Replacement text.
    pub replacement: String,
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as displayed (relative to the scan root).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte offset within the line); 1 when the
    /// producing rule is line-granular.
    pub col: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// Mechanical rewrite, when the finding has one (`--fix` applies it).
    pub fix: Option<Fix>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A committed finding ratchet: known findings that are tolerated until
/// the code they point at is swept, while anything *new* still fails.
///
/// The on-disk format is line-oriented and diff-friendly:
///
/// ```text
/// # simlint baseline v1
/// A1<TAB>crates/netsim/src/packet.rs<TAB>57<TAB>free-form note
/// ```
///
/// Entries match findings by `(rule, path, line)` — moving a baselined
/// site (or fixing it) invalidates the entry, which is the point of a
/// ratchet: the file can only shrink without deliberate review.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: std::collections::BTreeSet<(String, String, usize)>,
}

impl Baseline {
    /// Parse the on-disk format. Blank lines and `#` comments are
    /// skipped; a malformed entry line is an error (a silently dropped
    /// entry would un-suppress a finding with no explanation).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = std::collections::BTreeSet::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, '\t');
            let (Some(rule), Some(path), Some(lno)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected RULE<TAB>PATH<TAB>LINE[<TAB>note]",
                    n + 1
                ));
            };
            if Rule::parse(rule).is_none() {
                return Err(format!("baseline line {}: unknown rule `{rule}`", n + 1));
            }
            let lno: usize = lno
                .parse()
                .map_err(|_| format!("baseline line {}: bad line number `{lno}`", n + 1))?;
            entries.insert((rule.to_string(), path.to_string(), lno));
        }
        Ok(Baseline { entries })
    }

    /// Render a finding set in the on-disk format (used by
    /// `--write-baseline`). The note column carries the first sentence
    /// of the message for human review; it is ignored when parsing.
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from("# simlint baseline v1\n");
        let mut seen = std::collections::BTreeSet::new();
        for f in findings {
            if !seen.insert((f.rule.id(), f.path.as_str(), f.line)) {
                continue;
            }
            let note: String = f
                .message
                .split([';', '\n'])
                .next()
                .unwrap_or("")
                .chars()
                .take(120)
                .collect();
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                f.rule.id(),
                f.path,
                f.line,
                note
            ));
        }
        out
    }

    /// Whether a finding matches a baseline entry.
    pub fn contains(&self, f: &Finding) -> bool {
        self.entries
            .contains(&(f.rule.id().to_string(), f.path.clone(), f.line))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Split findings into `(new, baselined)`.
    pub fn split<'f>(&self, findings: &'f [Finding]) -> (Vec<&'f Finding>, Vec<&'f Finding>) {
        findings.iter().partition(|f| !self.contains(f))
    }

    /// Entries no finding matches any more, as `(rule, path, line)`.
    /// The ratchet treats these as errors: the swept code no longer
    /// needs the entry, so the baseline must shrink with it.
    pub fn stale(&self, findings: &[Finding]) -> Vec<(String, String, usize)> {
        self.entries
            .iter()
            .filter(|(rule, path, line)| {
                !findings
                    .iter()
                    .any(|f| f.rule.id() == rule && f.path == *path && f.line == *line)
            })
            .cloned()
            .collect()
    }
}

/// Which rule set a file gets, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Full rule set: the deterministic simulation stack.
    Sim,
    /// Support code (minijson, workloads, metrics, fluid, simlint): only the
    /// workspace-wide rules D2 and D3.
    Support,
    /// The timing harness: D3 only (it exists to read the wall clock).
    Bench,
}

/// Classify a workspace-relative path into a rule scope.
///
/// Anything not recognizably inside a support crate — including the root
/// package's `src/`, `tests/`, and `examples/`, and out-of-tree files such
/// as the self-test fixtures — gets the full sim rule set.
pub fn scope_of(path: &str) -> Scope {
    let norm = path.replace('\\', "/");
    if let Some(rest) = norm.split("crates/").nth(1) {
        let krate = rest.split('/').next().unwrap_or("");
        return match krate {
            "bench" => Scope::Bench,
            "minijson" | "workloads" | "metrics" | "fluid" | "simlint" => Scope::Support,
            _ => Scope::Sim,
        };
    }
    Scope::Sim
}

/// A source line after lexing: executable code with string-literal contents
/// replaced by placeholders, plus the concatenated comment text.
#[derive(Debug, Default, Clone)]
struct StrippedLine {
    code: String,
    comment: String,
}

/// Strip comments and string/char literal contents, preserving line
/// structure. Non-empty string literals become `"s"`, empty ones stay
/// `""` (so D5 can distinguish `.expect("")` from `.expect("msg")`).
fn strip_source(src: &str) -> Vec<StrippedLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<StrippedLine> = vec![StrippedLine::default()];
    let mut i = 0;

    // Push a char to the current line's code, tracking newlines.
    fn newline(lines: &mut Vec<StrippedLine>) {
        lines.push(StrippedLine::default());
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        if c == '\n' {
            newline(&mut lines);
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && next == Some('/') {
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            let last = lines.len() - 1;
            lines[last].comment.push_str(&text);
            i = j;
            continue;
        }
        if c == '/' && next == Some('*') {
            let mut depth = 1;
            let mut j = i + 2;
            let mut seg_start = i;
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else if chars[j] == '\n' {
                    // Attribute the comment text line by line.
                    let text: String = chars[seg_start..j].iter().collect();
                    let last = lines.len() - 1;
                    lines[last].comment.push_str(&text);
                    newline(&mut lines);
                    seg_start = j + 1;
                    j += 1;
                } else {
                    j += 1;
                }
            }
            let text: String = chars[seg_start..j.min(chars.len())].iter().collect();
            let last = lines.len() - 1;
            lines[last].comment.push_str(&text);
            i = j;
            continue;
        }

        // Raw / byte string literals: r"...", r#"..."#, b"...", br#"..."#.
        let prev_is_ident = {
            let last = lines.len() - 1;
            lines[last]
                .code
                .chars()
                .last()
                .is_some_and(|p| p.is_alphanumeric() || p == '_')
        };
        if (c == 'r' || c == 'b') && !prev_is_ident {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let mut hashes = 0;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            let is_raw = c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r'));
            if chars.get(j) == Some(&'"') && (is_raw || hashes == 0) {
                // Scan to the closing quote (+ matching hashes for raw).
                let body_start = j + 1;
                let mut k = body_start;
                loop {
                    match chars.get(k) {
                        None => break,
                        Some('\n') => {
                            newline(&mut lines);
                            k += 1;
                        }
                        Some('\\') if !is_raw => k += 2,
                        Some('"') => {
                            let close = (1..=hashes).all(|h| chars.get(k + h) == Some(&'#'));
                            if close {
                                k += 1 + hashes;
                                break;
                            }
                            k += 1;
                        }
                        Some(_) => k += 1,
                    }
                }
                let nonempty = k > body_start + 1 + hashes;
                let last = lines.len() - 1;
                lines[last]
                    .code
                    .push_str(if nonempty { "\"s\"" } else { "\"\"" });
                i = k;
                continue;
            }
            // Not a literal prefix: plain identifier char.
            let last = lines.len() - 1;
            lines[last].code.push(c);
            i += 1;
            continue;
        }

        // Ordinary string literal.
        if c == '"' {
            let mut k = i + 1;
            loop {
                match chars.get(k) {
                    None => break,
                    Some('\\') => k += 2,
                    Some('\n') => {
                        newline(&mut lines);
                        k += 1;
                    }
                    Some('"') => {
                        k += 1;
                        break;
                    }
                    Some(_) => k += 1,
                }
            }
            let nonempty = k > i + 2;
            let last = lines.len() - 1;
            lines[last]
                .code
                .push_str(if nonempty { "\"s\"" } else { "\"\"" });
            i = k;
            continue;
        }

        // Char literal vs lifetime: 'x' or '\n' is a literal; 'a (no
        // closing quote right after one char) is a lifetime.
        if c == '\'' {
            let is_char = matches!(
                (chars.get(i + 1), chars.get(i + 2)),
                (Some('\\'), _) | (Some(_), Some('\''))
            );
            if is_char {
                let mut k = i + 1;
                if chars.get(k) == Some(&'\\') {
                    k += 2;
                    // Skip extended escapes like '\u{1F600}'.
                    while k < chars.len() && chars[k] != '\'' {
                        k += 1;
                    }
                } else {
                    k += 1;
                }
                if chars.get(k) == Some(&'\'') {
                    k += 1;
                }
                let last = lines.len() - 1;
                lines[last].code.push_str("' '");
                i = k;
                continue;
            }
        }

        let last = lines.len() - 1;
        lines[last].code.push(c);
        i += 1;
    }
    lines
}

/// Whether `code` contains `word` as a standalone identifier.
fn has_ident(code: &str, word: &str) -> bool {
    find_ident(code, word).is_some()
}

/// Byte offset of the first standalone occurrence of identifier `word`.
pub(crate) fn find_ident(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len().max(1);
    }
    None
}

/// Whether `code` calls method `name` (an identifier preceded by `.` and
/// followed, after whitespace, by `(`).
fn has_method_call(code: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(at) = find_ident(&code[from..], name).map(|p| p + from) {
        let before_dot = code[..at].trim_end().ends_with('.');
        let after = code[at + name.len()..].trim_start();
        if before_dot && after.starts_with('(') {
            return true;
        }
        from = at + name.len();
    }
    false
}

/// Whether `code` contains `ident ::` (a path rooted at `ident`).
fn has_path_root(code: &str, ident: &str) -> bool {
    let mut from = 0;
    while let Some(at) = find_ident(&code[from..], ident).map(|p| p + from) {
        let after = code[at + ident.len()..].trim_start();
        if after.starts_with("::") {
            return true;
        }
        from = at + ident.len();
    }
    false
}

const INT_CAST_TARGETS: [&str; 10] = [
    "u64", "u32", "u16", "u8", "usize", "i64", "i32", "i16", "i8", "isize",
];

/// D4 evidence: does the line cast to an integer type with `as`?
fn has_int_cast(code: &str) -> bool {
    let mut from = 0;
    while let Some(at) = find_ident(&code[from..], "as").map(|p| p + from) {
        let after = code[at + 2..].trim_start();
        if INT_CAST_TARGETS.iter().any(|t| {
            after.starts_with(t)
                && !after[t.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
        }) {
            return true;
        }
        from = at + 2;
    }
    false
}

/// D4 evidence: does the line plausibly involve floating-point values?
fn has_float_evidence(code: &str) -> bool {
    code.contains("f64")
        || code.contains("f32")
        || has_method_call(code, "round")
        || has_method_call(code, "ceil")
        || has_method_call(code, "floor")
        || has_float_literal(code)
}

/// Whether the line contains a float literal (`8.0`, `1_000.5`, `1e9`).
/// Hex literals and tuple-field access (`self.0`) are excluded.
fn has_float_literal(code: &str) -> bool {
    let b = code.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if !b[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // A numeric token only counts when it starts one (not `x.0`, `id2`).
        let prev_ok = i == 0 || {
            let p = b[i - 1];
            !(p.is_ascii_alphanumeric() || p == b'_' || p == b'.')
        };
        let start = i;
        let mut j = i;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'.') {
            j += 1;
        }
        let tok = &b[start..j];
        let hex = tok.len() > 1 && tok[0] == b'0' && (tok[1] == b'x' || tok[1] == b'X');
        if prev_ok && !hex {
            for (p, &c) in tok.iter().enumerate() {
                let next_digit = tok.get(p + 1).is_some_and(|n| n.is_ascii_digit());
                if c == b'.' && next_digit {
                    return true; // 8.0 — not 1.max(2)
                }
                if (c == b'e' || c == b'E') && p > 0 && tok[p - 1].is_ascii_digit() && next_digit {
                    return true; // 1e9
                }
            }
        }
        i = j;
    }
    false
}

/// D6 evidence: does the line reference a fault-injection identifier?
/// Matched at the identifier level so `Default::default()` (which merely
/// contains the letters "fault") never counts.
fn has_fault_ident(code: &str) -> bool {
    let mut chars = code.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        if !(c.is_alphabetic() || c == '_') {
            continue;
        }
        let mut end = start + c.len_utf8();
        while let Some(&(j, n)) = chars.peek() {
            if n.is_alphanumeric() || n == '_' {
                end = j + n.len_utf8();
                chars.next();
            } else {
                break;
            }
        }
        let ident = code[start..end].to_ascii_lowercase();
        if ident.contains("fault") && !ident.contains("default") {
            return true;
        }
    }
    false
}

/// D6 evidence: a `.stream(<numeric literal>)` call — borrowing a stream
/// by raw number instead of through the named `FAULT_STREAM` constant.
fn has_numeric_stream_call(code: &str) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(".stream(").map(|p| p + from) {
        let arg = code[at + ".stream(".len()..].trim_start();
        if arg.starts_with(|c: char| c.is_ascii_digit()) {
            return true;
        }
        from = at + ".stream(".len();
    }
    false
}

/// Parse `simlint: allow(D1, D4)` style suppressions out of comment text.
fn parse_suppressions(comment: &str) -> Vec<Rule> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("simlint: allow(") {
        let args = &rest[at + "simlint: allow(".len()..];
        if let Some(close) = args.find(')') {
            for part in args[..close].split(',') {
                if let Some(r) = Rule::parse(part) {
                    out.push(r);
                }
            }
            rest = &args[close..];
        } else {
            break;
        }
    }
    out
}

/// v1 suppression map from stripped lines: `map[k]` holds the rules
/// suppressed on 0-based line `k`.
fn v1_suppression_map(lines: &[StrippedLine]) -> Vec<Vec<Rule>> {
    let mut suppressed: Vec<Vec<Rule>> = vec![Vec::new(); lines.len() + 1];
    for (k, line) in lines.iter().enumerate() {
        let rules = parse_suppressions(&line.comment);
        if rules.is_empty() {
            continue;
        }
        suppressed[k].extend(rules.iter().copied());
        if line.code.trim().is_empty() {
            // Comment-only line: the suppression covers the next line too.
            suppressed[k + 1].extend(rules.iter().copied());
        }
    }
    suppressed
}

/// Scan one file's source text with the v1 line rules and apply its
/// suppression comments. `display_path` drives both scope classification
/// and the paths embedded in findings.
pub fn scan_source(display_path: &str, src: &str) -> Vec<Finding> {
    let lines = strip_source(src);
    let suppressed = v1_suppression_map(&lines);
    v1_scan_lines(display_path, &lines)
        .into_iter()
        .filter(|f| {
            !suppressed
                .get(f.line - 1)
                .is_some_and(|sup| sup.contains(&f.rule))
        })
        .collect()
}

/// The v1 per-line token rules, without suppression (the pipeline
/// applies allows across v1 and v2 findings together).
fn v1_scan_lines(display_path: &str, lines: &[StrippedLine]) -> Vec<Finding> {
    let scope = scope_of(display_path);
    let file_name = Path::new(display_path)
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_default();

    let mut findings = Vec::new();
    let mut push = |k: usize, rule: Rule, message: String, _sup: &[Rule]| {
        findings.push(Finding {
            path: display_path.to_string(),
            line: k + 1,
            col: 1,
            rule,
            message,
            fix: None,
        });
    };

    for (k, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let sup: &[Rule] = &[];

        // D1: default-hasher hash collections in sim code.
        if scope == Scope::Sim
            && (has_ident(code, "HashMap") || has_ident(code, "HashSet"))
            && !has_ident(code, "with_hasher")
            && !has_ident(code, "BuildHasher")
        {
            push(
                k,
                Rule::D1,
                "HashMap/HashSet with the default RandomState hasher iterates in \
                 nondeterministic order; use BTreeMap/BTreeSet or a seeded hasher"
                    .into(),
                sup,
            );
        }

        // D2: wall-clock reads outside bench.
        if scope != Scope::Bench && (has_ident(code, "Instant") || has_ident(code, "SystemTime")) {
            push(
                k,
                Rule::D2,
                "wall-clock access (Instant/SystemTime) in simulation code; \
                 simulated time comes from the engine clock, timing belongs in crates/bench"
                    .into(),
                sup,
            );
        }

        // D3: ambient randomness anywhere.
        if has_ident(code, "thread_rng")
            || has_ident(code, "getrandom")
            || has_ident(code, "RandomState")
            || has_path_root(code, "rand")
        {
            push(
                k,
                Rule::D3,
                "ambient randomness (thread_rng/rand::/getrandom/RandomState); \
                 all randomness must flow from a seeded dcsim::DetRng"
                    .into(),
                sup,
            );
        }

        // D4: lossy float→int casts on unit quantities outside units.rs.
        if scope == Scope::Sim
            && file_name != "units.rs"
            && has_int_cast(code)
            && has_float_evidence(code)
        {
            push(
                k,
                Rule::D4,
                "lossy float→integer cast on a unit quantity; use the allowlisted \
                 units.rs helpers (BitRate::from_bps_f64 / Nanos::from_ns_f64)"
                    .into(),
                sup,
            );
        }

        // D6: fault-injection randomness outside the dedicated stream. A
        // line is in fault context when the file or the line names a
        // fault identifier; within that context, seeding a private
        // DetRng or grabbing a stream by raw number (instead of the
        // named FAULT_STREAM constant) is flagged.
        if scope == Scope::Sim
            && (file_name.contains("fault") || has_fault_ident(code))
            && !code.contains("FAULT_STREAM")
            && (code.contains("DetRng::new") || has_numeric_stream_call(code))
        {
            push(
                k,
                Rule::D6,
                "fault-injection randomness must come from the dedicated stream: \
                 derive the RNG with .stream(FAULT_STREAM), never DetRng::new or a \
                 raw stream number (streams 0-3 belong to workload/ECMP/RED/feedback)"
                    .into(),
                sup,
            );
        }

        // P1 (lexical prong): `thread_local!` state in sim code — the
        // declaration is a macro invocation the v2 parser skips, so it is
        // caught here; statics go through the semantic pass.
        if scope == Scope::Sim && has_ident(code, "thread_local") {
            push(
                k,
                Rule::P1,
                "thread_local! state gives every engine worker thread its own copy; \
                 under the parallel engine results then depend on which thread ran \
                 which shard — thread the state through &mut instead"
                    .into(),
                sup,
            );
        }

        // D5: undocumented panics in sim code.
        if scope == Scope::Sim {
            if has_method_call(code, "unwrap") {
                push(
                    k,
                    Rule::D5,
                    ".unwrap() hides the invariant it relies on; use a typed error or \
                     .expect(\"why this cannot fail\")"
                        .into(),
                    sup,
                );
            }
            if code.contains(".expect(\"\")") {
                push(
                    k,
                    Rule::D5,
                    ".expect(\"\") documents nothing; state the invariant in the message".into(),
                    sup,
                );
            }
        }
    }
    findings
}

/// Directories never descended into during a tree walk.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Recursively collect the `.rs` files under `root`, sorted for
/// deterministic report order.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The result of running the full v1+v2 pipeline over a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Post-suppression findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Files the v2 parser could not process (lexer error or unbalanced
    /// delimiters); v1 rules still ran on these.
    pub parse_failures: Vec<parse::ParseFailure>,
    /// Number of files analyzed.
    pub scanned: usize,
}

/// One `simlint: allow(...)` directive found in a file's comments.
struct AllowSite {
    line: usize,
    end_line: usize,
    rules: Vec<Rule>,
    span: lex::Span,
    comment_only: bool,
    used: bool,
}

impl AllowSite {
    fn covers(&self, line: usize) -> bool {
        (self.line <= line && line <= self.end_line)
            || (self.comment_only && line == self.end_line + 1)
    }
}

/// Collect allow directives from lexed comments. Doc comments (`///`,
/// `//!`) are documentation, not directives — example allow text inside
/// them neither suppresses nor goes stale.
fn allows_from_lexed(lexed: &lex::Lexed) -> Vec<AllowSite> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        if c.doc {
            continue;
        }
        let rules = parse_suppressions(&c.text);
        if rules.is_empty() {
            continue;
        }
        let comment_only =
            (c.line..=c.end_line).all(|l| !lexed.line_has_code.get(l).copied().unwrap_or(false));
        out.push(AllowSite {
            line: c.line,
            end_line: c.end_line,
            rules,
            span: c.span,
            comment_only,
            used: false,
        });
    }
    out
}

/// The span `--fix` deletes for a stale allow: the comment plus its
/// leading inline whitespace, plus the trailing newline when the comment
/// stands on lines of its own.
fn stale_allow_deletion(src: &str, site: &AllowSite) -> lex::Span {
    let bytes = src.as_bytes();
    let mut lo = site.span.lo;
    while lo > 0 && matches!(bytes[lo - 1], b' ' | b'\t') {
        lo -= 1;
    }
    let mut hi = site.span.hi.min(src.len());
    if site.comment_only && (lo == 0 || bytes[lo - 1] == b'\n') && bytes.get(hi) == Some(&b'\n') {
        hi += 1;
    }
    lex::Span { lo, hi }
}

/// Run the full pipeline (v1 line rules, v2 semantic rules, shared
/// suppression, S1 staleness) over an in-memory set of
/// `(display_path, source)` files. The workspace symbol table is built
/// from every file that parses, so cross-file type resolution works.
pub fn analyze_files(files: &[(String, String)]) -> Analysis {
    let mut parse_failures = Vec::new();
    let mut parsed: Vec<Option<(ast::File, lex::Lexed)>> = Vec::with_capacity(files.len());
    for (path, src) in files {
        match parse::parse_file(path, src) {
            Ok(p) => parsed.push(Some(p)),
            Err(e) => {
                parse_failures.push(e);
                parsed.push(None);
            }
        }
    }
    let ast_files: Vec<&ast::File> = parsed.iter().flatten().map(|(f, _)| f).collect();
    let symbols = sym::Symbols::build(ast_files.iter().copied());

    // Per-file pass: v1 line rules plus v2 semantic rules, collecting the
    // call-graph facts the interprocedural pass consumes.
    let mut raws: Vec<Vec<Finding>> = Vec::with_capacity(files.len());
    let mut facts: Vec<callgraph::FileFacts> = Vec::new();
    for ((path, src), parsed) in files.iter().zip(&parsed) {
        let lines = strip_source(src);
        let mut raw = v1_scan_lines(path, &lines);
        if let Some((file, _)) = parsed {
            let (sem_findings, file_facts) = sem::check_file_collect(file, src, &symbols);
            raw.extend(sem_findings);
            facts.push(file_facts);
        }
        raws.push(raw);
    }

    // Interprocedural pass: workspace call graph + P-family flow rules
    // and A-family cost rules. Runs before suppression so P/A findings
    // can be allowed and S1 staleness accounts for them.
    let graph = callgraph::CallGraph::build(facts);
    for f in flow::check(&graph)
        .into_iter()
        .chain(cost::check(&graph, &symbols))
    {
        if let Some(i) = files.iter().position(|(p, _)| p == &f.path) {
            raws[i].push(f);
        }
    }

    // Suppression + S1 staleness, per file.
    let mut findings = Vec::new();
    for (((path, src), parsed), mut raw) in files.iter().zip(&parsed).zip(raws) {
        match parsed {
            Some((_, lexed)) => {
                let mut allows = allows_from_lexed(lexed);
                raw.retain(|f| {
                    let mut keep = true;
                    for a in allows.iter_mut() {
                        if a.covers(f.line) && a.rules.contains(&f.rule) {
                            a.used = true;
                            keep = false;
                        }
                    }
                    keep
                });
                let index = sem::LineIndex::new(src);
                for a in allows.iter().filter(|a| !a.used) {
                    let (line, col) = index.line_col(a.span.lo);
                    let ids: Vec<&str> = a.rules.iter().map(|r| r.id()).collect();
                    raw.push(Finding {
                        path: path.clone(),
                        line,
                        col,
                        rule: Rule::S1,
                        message: format!(
                            "stale `simlint: allow({})` — it suppresses nothing on \
                             this or the next line; delete it",
                            ids.join(", ")
                        ),
                        fix: Some(Fix {
                            span: stale_allow_deletion(src, a),
                            replacement: String::new(),
                        }),
                    });
                }
            }
            None => {
                // Parser could not process the file: fall back to the v1
                // suppression semantics and skip the S1 staleness check.
                let suppressed = v1_suppression_map(&strip_source(src));
                raw.retain(|f| {
                    !suppressed
                        .get(f.line - 1)
                        .is_some_and(|sup| sup.contains(&f.rule))
                });
            }
        }
        findings.extend(raw);
    }

    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    parse_failures.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Analysis {
        findings,
        parse_failures,
        scanned: files.len(),
    }
}

/// Read every `.rs` file under `root` into memory, with workspace-
/// relative display paths.
pub fn read_tree(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for path in collect_rust_files(root)? {
        let display = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        out.push((display, src));
    }
    Ok(out)
}

/// Run the full pipeline over every `.rs` file under `root`.
pub fn analyze_tree(root: &Path) -> io::Result<Analysis> {
    Ok(analyze_files(&read_tree(root)?))
}

/// Scan every `.rs` file under `root` with the full rule set.
/// Returns `(findings, files_scanned)`; parse failures are reported via
/// [`analyze_tree`], which this wraps.
pub fn scan_tree(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let a = analyze_tree(root)?;
    Ok((a.findings, a.scanned))
}

/// Apply every available fix across an in-memory file set, re-analyzing
/// between passes until no applicable fix remains (nested findings need
/// more than one splice). Returns the number of fixes applied.
pub fn fix_source_set(files: &mut [(String, String)]) -> usize {
    let mut total = 0;
    for _ in 0..8 {
        let analysis = analyze_files(files);
        let mut pass = 0;
        for (path, src) in files.iter_mut() {
            let per_file: Vec<&Finding> = analysis
                .findings
                .iter()
                .filter(|f| &f.path == path && f.fix.is_some())
                .collect();
            if per_file.is_empty() {
                continue;
            }
            let fixes: Vec<&Fix> = per_file.iter().filter_map(|f| f.fix.as_ref()).collect();
            let (new_src, n) = fix::apply_fixes(src, &fixes);
            if n > 0 {
                *src = new_src;
                pass += n;
            }
        }
        total += pass;
        if pass == 0 {
            break;
        }
    }
    total
}

/// Result of [`fix_tree`].
#[derive(Debug, Default)]
pub struct FixReport {
    /// Total fixes applied across all passes.
    pub applied: usize,
    /// Display paths of the files rewritten.
    pub files: Vec<String>,
}

/// Apply every available fix to the tree under `root`, writing changed
/// files back to disk.
pub fn fix_tree(root: &Path) -> io::Result<FixReport> {
    let original = read_tree(root)?;
    let mut files = original.clone();
    let applied = fix_source_set(&mut files);
    let mut report = FixReport {
        applied,
        files: Vec::new(),
    };
    for ((display, new_src), (_, old_src)) in files.iter().zip(&original) {
        if new_src != old_src {
            fs::write(root.join(display), new_src)?;
            report.files.push(display.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_in(path: &str, src: &str) -> Vec<Rule> {
        let mut r: Vec<Rule> = scan_source(path, src).into_iter().map(|f| f.rule).collect();
        r.sort();
        r.dedup();
        r
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = "let x = \"HashMap Instant .unwrap()\"; // HashMap in comment\n";
        assert!(rules_in("crates/dcsim/src/a.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_are_stripped() {
        let src = "let x = r#\"thread_rng HashSet\"#;\nlet y = b\"Instant\";\n";
        assert!(rules_in("crates/dcsim/src/a.rs", src).is_empty());
    }

    #[test]
    fn multiline_strings_and_block_comments_keep_line_numbers() {
        let src = "let s = \"line one\nline two\";\n/* block\n comment */\nlet m: HashMap<u32, u32> = HashMap::new();\n";
        let f = scan_source("crates/netsim/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A naive char-literal scanner would swallow from 'a to the next
        // quote and hide the HashMap behind it.
        let src = "fn f<'a>(x: &'a u32) {}\nlet m = HashMap::new();\n";
        let f = scan_source("crates/dcsim/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn d1_seeded_hasher_is_allowed() {
        let src = "let m: HashMap<u32, u32, S> = HashMap::with_hasher(seeded);\n";
        assert!(rules_in("crates/dcsim/src/a.rs", src).is_empty());
    }

    #[test]
    fn d1_only_in_sim_scope() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_in("crates/dcsim/src/a.rs", src), vec![Rule::D1]);
        assert_eq!(rules_in("tests/foo.rs", src), vec![Rule::D1]);
        assert!(rules_in("crates/minijson/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d2_everywhere_but_bench() {
        let src = "let t0 = Instant::now();\n";
        assert_eq!(rules_in("crates/dcsim/src/engine.rs", src), vec![Rule::D2]);
        assert_eq!(rules_in("crates/workloads/src/lib.rs", src), vec![Rule::D2]);
        assert!(rules_in("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d3_everywhere_including_bench() {
        let src = "let r = rand::thread_rng();\n";
        let got = rules_in("crates/bench/src/lib.rs", src);
        assert_eq!(got, vec![Rule::D3]);
    }

    #[test]
    fn d3_detrng_is_fine() {
        let src = "let mut rng = DetRng::new(7); let v = rng.below(10);\n";
        assert!(rules_in("crates/dcsim/src/a.rs", src).is_empty());
    }

    #[test]
    fn d6_flags_private_fault_rngs_and_raw_streams() {
        // Fault context from the line's identifiers…
        let src = "let fault_rng = DetRng::new(seed);\n";
        assert_eq!(
            rules_in("crates/netsim/src/network.rs", src),
            vec![Rule::D6]
        );
        // …or from the file name, even when the line says nothing faulty.
        let src = "let rng = DetRng::new(7);\n";
        assert_eq!(rules_in("crates/netsim/src/fault.rs", src), vec![Rule::D6]);
        // Borrowing a stream by raw number in fault context.
        let src = "let fault_rng = root.stream(2);\n";
        assert_eq!(
            rules_in("crates/netsim/src/network.rs", src),
            vec![Rule::D6]
        );
        // The named constant is the sanctioned path.
        let ok = "let fault_rng = root.stream(FAULT_STREAM);\n";
        assert!(rules_in("crates/netsim/src/network.rs", ok).is_empty());
        // `Default::default()` is not fault context.
        let ok = "let cfg = NetConfig::default(); let rng = DetRng::new(1);\n";
        assert!(rules_in("crates/netsim/src/network.rs", ok).is_empty());
        // Non-fault code may stream by number (D6 stays out of the way).
        let ok = "let red_rng = root.stream(2);\n";
        assert!(rules_in("crates/netsim/src/network.rs", ok).is_empty());
    }

    #[test]
    fn d4_flags_float_casts_and_allows_units_rs() {
        let src = "let r = BitRate((x * 8.0 / secs).round() as u64);\n";
        assert_eq!(rules_in("crates/core/src/cc.rs", src), vec![Rule::D4]);
        assert!(rules_in("crates/dcsim/src/units.rs", src).is_empty());
        // Integer-only casts carry no float evidence.
        let ok = "let slot = (t >> shift) as usize;\n";
        assert!(rules_in("crates/dcsim/src/wheel.rs", ok).is_empty());
    }

    #[test]
    fn d5_unwrap_flagged_expect_with_message_ok() {
        assert_eq!(
            rules_in("crates/netsim/src/port.rs", "let v = x.unwrap();\n"),
            vec![Rule::D5]
        );
        assert_eq!(
            rules_in("crates/netsim/src/port.rs", "let v = x.expect(\"\");\n"),
            vec![Rule::D5]
        );
        assert!(rules_in(
            "crates/netsim/src/port.rs",
            "let v = x.expect(\"backlog checked above\");\n"
        )
        .is_empty());
        // unwrap_or and friends are fine.
        assert!(rules_in(
            "crates/netsim/src/port.rs",
            "let v = x.unwrap_or(0); let w = y.unwrap_or_else(f);\n"
        )
        .is_empty());
    }

    #[test]
    fn suppression_same_line_and_line_above() {
        let same = "let k = x.ceil() as usize; // simlint: allow(D4) — bounded count\n";
        assert!(rules_in("crates/fairsim/src/a.rs", same).is_empty());
        let above = "// simlint: allow(D4) — bounded count\nlet k = x.ceil() as usize;\n";
        assert!(rules_in("crates/fairsim/src/a.rs", above).is_empty());
        // The wrong rule id does not suppress.
        let wrong = "let k = x.ceil() as usize; // simlint: allow(D1)\n";
        assert_eq!(rules_in("crates/fairsim/src/a.rs", wrong), vec![Rule::D4]);
        // A suppression only reaches one line down.
        let far = "// simlint: allow(D4)\n\nlet k = x.ceil() as usize;\n";
        assert_eq!(rules_in("crates/fairsim/src/a.rs", far), vec![Rule::D4]);
    }

    #[test]
    fn suppression_lists_multiple_rules() {
        let src = "let m = HashMap::new(); let v = m.get(&k).unwrap(); // simlint: allow(D1, D5)\n";
        assert!(rules_in("crates/dcsim/src/a.rs", src).is_empty());
    }

    #[test]
    fn finding_display_format() {
        let f = scan_source("crates/dcsim/src/a.rs", "let v = x.unwrap();\n");
        let line = format!("{}", f[0]);
        assert!(
            line.starts_with("crates/dcsim/src/a.rs:1: error[D5]:"),
            "{line}"
        );
    }

    #[test]
    fn scope_classification() {
        assert_eq!(scope_of("crates/dcsim/src/engine.rs"), Scope::Sim);
        assert_eq!(scope_of("crates/cc-hpcc/src/lib.rs"), Scope::Sim);
        assert_eq!(scope_of("crates/bench/src/lib.rs"), Scope::Bench);
        assert_eq!(scope_of("crates/minijson/src/lib.rs"), Scope::Support);
        assert_eq!(scope_of("crates/simlint/src/lib.rs"), Scope::Support);
        assert_eq!(scope_of("tests/determinism.rs"), Scope::Sim);
        assert_eq!(scope_of("examples/quickstart.rs"), Scope::Sim);
    }
}
