//! Hot-path cost analysis: the A (allocation/cost) rule family.
//!
//! ROADMAP item 5 measured per-event overhead — boxing, transient `Vec`s,
//! clones — overtaking algorithmic order on the incast cell. These rules
//! find that cost statically, riding the v3 call graph: a forward walk
//! from the engine hot roots marks every function whose body runs per
//! event (or per run-loop iteration), and allocation facts recorded by
//! the semantic walker ([`crate::sem`]) are reported inside that closure
//! with a witness chain back to the root.
//!
//! - **A1** — heap allocation (`Box::new`, growing `Vec`/`String`,
//!   `format!`, `.clone()` of heap-owning workspace types) reachable
//!   from a hot root. Sites inside loops escalate (they allocate every
//!   iteration); `with_capacity`/`reserve` anywhere in the same function
//!   amortizes its `Vec` growth and suppresses those findings.
//! - **A2** — boxed payloads in sim-scope event enums whose concrete
//!   type the symbol table sizes at or under [`INLINE_LIMIT`] bytes:
//!   the payload fits an inline variant (or a `Copy` slab handle).
//! - **A3** — collect-then-iterate materialization on hot chains.
//! - **A4** — struct parameters estimated above [`BYVAL_LIMIT`] bytes
//!   passed by value across hot call edges.
//!
//! The walk does not descend into callees with constructor/builder names
//! (`new`, `build*`, `with_*`, `from_*`, `setup*`, `init*`, `default`):
//! their cost is amortized setup, not per-event traffic. Inside the
//! once-per-run driver roots (`run`/`run_with`/`run_watched`) only sites
//! inside loops fire — a one-shot allocation in a driver *is* setup.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::TypeRef;
use crate::callgraph::{AllocKind, CallGraph, FnKey, Reach};
use crate::sym::Symbols;
use crate::{scope_of, Finding, Rule, Scope};

/// Once-per-run driver roots: only per-iteration allocations fire here.
const RUN_ROOTS: [&str; 3] = ["run", "run_with", "run_watched"];

/// Per-event root selection. `step` and owner-qualified `handle` are the
/// dispatcher; `push`/`pop` only count on scheduler-shaped owners (the
/// bare names would match every `Vec` helper in the workspace), and
/// `enqueue`/`dequeue` on any method owner (they are not std names).
fn is_event_root(key: &FnKey) -> bool {
    match key.name.as_str() {
        "step" => true,
        "handle" => key.owner.is_some(),
        "push" | "pop" => key
            .owner
            .as_deref()
            .is_some_and(|o| o.ends_with("Queue") || o.ends_with("Wheel")),
        "enqueue" | "dequeue" => key.owner.is_some(),
        _ => false,
    }
}

/// Estimated byte size above which a by-value parameter is A4 material
/// (one cache line; anything larger is a measurable per-call memcpy).
pub const BYVAL_LIMIT: usize = 64;

/// Estimated payload size at or below which a boxed event payload "fits
/// an inline variant" (A2). Two cache lines: the event array slot cost
/// is still far below a per-event allocator round-trip.
pub const INLINE_LIMIT: usize = 128;

/// Callee names whose cost is amortized setup — the hot walk stops at
/// them rather than descending.
pub fn is_amortized(name: &str) -> bool {
    matches!(name, "new" | "default" | "build")
        || name.starts_with("with_")
        || name.starts_with("from_")
        || name.starts_with("build_")
        || name.starts_with("setup")
        || name.starts_with("init")
}

/// Run every A rule over the linked graph and symbol table.
pub fn check(g: &CallGraph, sym: &Symbols) -> Vec<Finding> {
    let mut out = Vec::new();
    let run_roots = g.sim_fns_named(&RUN_ROOTS);
    let event_roots: Vec<usize> = (0..g.fns.len())
        .filter(|&i| sim_nontest(g, i) && is_event_root(&g.fns[i].key))
        .collect();
    let mut roots = run_roots.clone();
    roots.extend(&event_roots);
    let reach = hot_reach(g, &roots);
    // Loop-only gating applies to everything reachable *only* through the
    // run drivers: one-shot allocations there are setup, not per-event
    // cost. Anything a per-event root reaches pays on every event.
    let event_reach = hot_reach(g, &event_roots);
    let run_only: BTreeSet<usize> = reach
        .parent
        .keys()
        .copied()
        .filter(|&i| !event_reach.contains(i))
        .collect();
    check_a1(g, &reach, &run_only, &mut out);
    check_a3(g, &reach, &run_only, &mut out);
    check_a4(g, &reach, &run_only, &mut out);
    check_a2(sym, &mut out);
    // Distinct sites can collapse onto one line (nested `vec![..]`); one
    // report per (line, rule, message) is enough.
    let mut seen: BTreeSet<(String, usize, &'static str, String)> = BTreeSet::new();
    out.retain(|f| seen.insert((f.path.clone(), f.line, f.rule.id(), f.message.clone())));
    out
}

fn sim_nontest(g: &CallGraph, i: usize) -> bool {
    !g.fns[i].is_test && g.scope(i) == Scope::Sim
}

/// Forward BFS from `roots` that refuses to enter test functions and
/// amortized-setup callees, keeping parents for witness chains.
fn hot_reach(g: &CallGraph, roots: &[usize]) -> Reach {
    let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for &r in roots {
        if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
            e.insert(None);
            queue.push(r);
        }
    }
    let mut at = 0;
    while at < queue.len() {
        let cur = queue[at];
        at += 1;
        for &next in &g.edges[cur] {
            if g.fns[next].is_test
                || is_amortized(&g.fns[next].key.name)
                || g.name_only.contains(&(cur, next))
            {
                continue;
            }
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                e.insert(Some(cur));
                queue.push(next);
            }
        }
    }
    Reach { parent }
}

// ----- A1: heap allocation on the hot path --------------------------------

fn check_a1(g: &CallGraph, reach: &Reach, run_only: &BTreeSet<usize>, out: &mut Vec<Finding>) {
    for (i, f) in g.fns.iter().enumerate() {
        if !reach.contains(i) || !sim_nontest(g, i) {
            continue;
        }
        let loop_gated = run_only.contains(&i);
        for s in &f.alloc_sites {
            if loop_gated && !s.in_loop {
                continue;
            }
            if matches!(s.kind, AllocKind::VecGrowth | AllocKind::VecPush) && f.reserves {
                continue;
            }
            let loop_note = if s.in_loop {
                " inside a loop — it allocates every iteration"
            } else {
                ""
            };
            let advice = match s.kind {
                AllocKind::BoxNew => "allocate from a pool/slab or inline the payload",
                AllocKind::VecGrowth | AllocKind::VecPush => {
                    "pre-size with `with_capacity`/`reserve` outside the hot path"
                }
                AllocKind::StringAlloc => {
                    "precompute labels or reuse a buffer; per-event string building \
                     dominates dispatch cost"
                }
                AllocKind::CloneHeap => {
                    "borrow the data or pass a pool handle instead of cloning heap storage"
                }
            };
            out.push(Finding {
                path: f.path.clone(),
                line: s.line,
                col: 1,
                rule: Rule::A1,
                message: format!(
                    "{} in `{}` on the engine hot path{loop_note}; {advice} \
                     (hot chain: {})",
                    s.what,
                    f.key.display(),
                    g.witness(reach, i)
                ),
                fix: s.fix.clone(),
            });
        }
    }
}

// ----- A2: boxed event payloads that fit inline ---------------------------

/// The innermost `Box<T>` argument found anywhere in a payload type.
fn find_box(ty: &TypeRef) -> Option<&TypeRef> {
    match ty {
        TypeRef::Path { segs, args } => {
            if segs.last().is_some_and(|s| s == "Box") {
                return args.first();
            }
            args.iter().find_map(find_box)
        }
        TypeRef::Tuple(ts) => ts.iter().find_map(find_box),
        _ => None,
    }
}

/// Render a payload type for diagnostics (`path::Last` → `Last`).
fn type_name(ty: &TypeRef) -> String {
    match ty {
        TypeRef::Path { segs, .. } => segs.last().cloned().unwrap_or_else(|| "?".to_string()),
        TypeRef::Ref(inner) => format!("&{}", type_name(inner)),
        TypeRef::Tuple(_) => "(..)".to_string(),
        TypeRef::Unit => "()".to_string(),
        TypeRef::Other => "?".to_string(),
    }
}

fn check_a2(sym: &Symbols, out: &mut Vec<Finding>) {
    for (name, info) in &sym.enums {
        if info.cfg_test || scope_of(&info.file) != Scope::Sim {
            continue;
        }
        for (vi, payload) in info.payloads.iter().enumerate() {
            let variant = match info.variants.get(vi) {
                Some(v) => v,
                None => continue,
            };
            for ty in payload {
                let Some(inner) = find_box(ty) else { continue };
                let inner_name = type_name(inner);
                if inner_name == *name {
                    continue; // recursive enum: boxing is the point
                }
                let known =
                    sym.structs.contains_key(&inner_name) || sym.enums.contains_key(&inner_name);
                let message = if known {
                    let est = sym.est_size(inner, 0);
                    if est > INLINE_LIMIT {
                        continue; // genuinely large payload: boxing is justified
                    }
                    format!(
                        "variant `{name}::{variant}` boxes its `{inner_name}` payload \
                         (~{est} bytes estimated): one heap allocation + pointer chase \
                         per event; it fits an inline variant — store it by value or \
                         as a generation-indexed pool handle"
                    )
                } else {
                    format!(
                        "variant `{name}::{variant}` carries a boxed payload \
                         `Box<{inner_name}>`: a per-event heap allocation; if this is \
                         a trait object, enumerate the concrete payload types as \
                         inline variants"
                    )
                };
                out.push(Finding {
                    path: info.file.clone(),
                    line: info.line,
                    col: 1,
                    rule: Rule::A2,
                    message,
                    fix: None,
                });
            }
        }
    }
}

// ----- A3: collect-then-iterate on hot chains -----------------------------

fn check_a3(g: &CallGraph, reach: &Reach, run_only: &BTreeSet<usize>, out: &mut Vec<Finding>) {
    for (i, f) in g.fns.iter().enumerate() {
        if !reach.contains(i) || !sim_nontest(g, i) {
            continue;
        }
        let loop_gated = run_only.contains(&i);
        for s in &f.collect_iters {
            if loop_gated && !s.in_loop {
                continue;
            }
            out.push(Finding {
                path: f.path.clone(),
                line: s.line,
                col: 1,
                rule: Rule::A3,
                message: format!(
                    "`{}` materializes an intermediate `Vec` with `.collect()` and \
                     immediately re-iterates it ({}) on the engine hot path; fuse \
                     the iterator chain instead (hot chain: {})",
                    f.key.display(),
                    s.method,
                    g.witness(reach, i)
                ),
                fix: s.fix.clone(),
            });
        }
    }
}

// ----- A4: large structs by value across hot call edges -------------------

fn check_a4(g: &CallGraph, reach: &Reach, run_only: &BTreeSet<usize>, out: &mut Vec<Finding>) {
    for (i, f) in g.fns.iter().enumerate() {
        if !reach.contains(i) || !sim_nontest(g, i) {
            continue;
        }
        // A once-per-run driver copying a config struct at entry is setup.
        if run_only.contains(&i) {
            continue;
        }
        for p in &f.byval_params {
            out.push(Finding {
                path: f.path.clone(),
                line: f.line,
                col: 1,
                rule: Rule::A4,
                message: format!(
                    "`{}` takes `{}: {}` by value (~{} bytes estimated) on the \
                     engine hot path — the struct is copied on every call; take \
                     `&{}` instead (hot chain: {})",
                    f.key.display(),
                    p.name,
                    p.ty,
                    p.est_bytes,
                    p.ty,
                    g.witness(reach, i)
                ),
                fix: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, sem, sym};

    fn findings_of(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<(crate::ast::File, crate::lex::Lexed)> = srcs
            .iter()
            .map(|(p, s)| parse::parse_file(p, s).expect("test source parses"))
            .collect();
        let symbols = sym::Symbols::build(parsed.iter().map(|(f, _)| f));
        let facts = srcs
            .iter()
            .zip(&parsed)
            .map(|((_, s), (file, _))| sem::check_file_collect(file, s, &symbols).1)
            .collect();
        let g = CallGraph::build(facts);
        check(&g, &symbols)
    }

    #[test]
    fn a1_fires_on_boxed_alloc_reachable_from_step() {
        let f = findings_of(&[(
            "crates/dcsim/src/engine.rs",
            "pub fn step() { dispatch(); }\n\
             fn dispatch() { deliver(); }\n\
             fn deliver() { let _b = Box::new(5u64); }\n",
        )]);
        let a1: Vec<_> = f.iter().filter(|x| x.rule == Rule::A1).collect();
        assert_eq!(a1.len(), 1, "{f:?}");
        assert_eq!(a1[0].line, 3);
        assert!(
            a1[0].message.contains("step"),
            "witness chain: {}",
            a1[0].message
        );
        assert!(a1[0].message.contains("dispatch"), "{}", a1[0].message);
    }

    #[test]
    fn a1_run_only_subtree_is_loop_gated_but_event_reach_is_not() {
        // `helper` is reachable from both the run driver and the per-event
        // dispatcher — the event path wins and the one-shot alloc fires.
        let f = findings_of(&[(
            "crates/dcsim/src/engine.rs",
            "pub fn run() { prep_chain(); }\n\
             fn prep_chain() { let _s = String::from(\"x\"); }\n\
             pub fn step() { helper(); }\n\
             fn helper() { let _b = Box::new(1u64); }\n",
        )]);
        let a1: Vec<_> = f.iter().filter(|x| x.rule == Rule::A1).collect();
        assert_eq!(a1.len(), 1, "{f:?}");
        assert_eq!(a1[0].line, 4, "only the event-reachable alloc fires: {f:?}");
    }

    #[test]
    fn a1_skips_amortized_constructors_and_one_shot_run_setup() {
        let f = findings_of(&[(
            "crates/dcsim/src/engine.rs",
            "pub fn run() { let _v: Vec<u64> = Vec::new(); let _p = Pool::new(); }\n\
             struct Pool;\n\
             impl Pool { fn new() -> Pool { let _b = Box::new(1u64); Pool } }\n",
        )]);
        assert!(
            f.iter().all(|x| x.rule != Rule::A1),
            "one-shot setup in a run root and constructor bodies are exempt: {f:?}"
        );
    }

    #[test]
    fn a1_escalates_loop_allocations_even_in_run_roots() {
        let f = findings_of(&[(
            "crates/dcsim/src/engine.rs",
            "pub fn run(items: Vec<u64>) {\n\
                 for it in items {\n\
                     let _b = Box::new(it);\n\
                 }\n\
             }\n",
        )]);
        let a1: Vec<_> = f.iter().filter(|x| x.rule == Rule::A1).collect();
        assert_eq!(a1.len(), 1, "{f:?}");
        assert!(
            a1[0].message.contains("every iteration"),
            "{}",
            a1[0].message
        );
    }

    #[test]
    fn a1_vec_growth_suppressed_by_reserve() {
        let f = findings_of(&[(
            "crates/dcsim/src/engine.rs",
            "pub fn step(n: usize) {\n\
                 let mut v: Vec<u64> = Vec::new();\n\
                 v.reserve(n);\n\
                 v.push(1);\n\
             }\n",
        )]);
        assert!(f.iter().all(|x| x.rule != Rule::A1), "{f:?}");
    }

    #[test]
    fn a2_fires_on_boxed_small_payload() {
        let f = findings_of(&[(
            "crates/netsim/src/network.rs",
            "pub struct Pkt { pub a: u64, pub b: u64 }\n\
             pub enum Event { Tick, Arrive { pkt: Box<Pkt> } }\n",
        )]);
        let a2: Vec<_> = f.iter().filter(|x| x.rule == Rule::A2).collect();
        assert_eq!(a2.len(), 1, "{f:?}");
        assert!(a2[0].message.contains("Event::Arrive"), "{}", a2[0].message);
        assert!(a2[0].message.contains("16 bytes"), "{}", a2[0].message);
    }

    #[test]
    fn a2_spares_recursive_and_large_payloads() {
        let f = findings_of(&[(
            "crates/netsim/src/network.rs",
            "pub enum Tree { Leaf, Node(Box<Tree>) }\n\
             pub struct Huge { pub a: [u8; 4096], pub b: u64, pub c: u64, pub d: u64,\n\
                 pub e: u64, pub f: u64, pub g: u64, pub h: u64, pub i: u64,\n\
                 pub j: u64, pub k: u64, pub l: u64, pub m: u64, pub n: u64,\n\
                 pub o: u64, pub p: u64, pub q: u64, pub r: u64 }\n\
             pub enum Ev { Big(Box<Huge>) }\n",
        )]);
        assert!(f.iter().all(|x| x.rule != Rule::A2), "{f:?}");
    }

    #[test]
    fn a3_fires_with_fusion_fix() {
        let f = findings_of(&[(
            "crates/dcsim/src/engine.rs",
            "pub fn step(xs: Vec<u64>) -> u64 {\n\
                 let mut t = 0;\n\
                 for x in xs.iter().map(|x| x + 1).collect::<Vec<u64>>().into_iter() {\n\
                     t += x;\n\
                 }\n\
                 t\n\
             }\n",
        )]);
        let a3: Vec<_> = f.iter().filter(|x| x.rule == Rule::A3).collect();
        assert_eq!(a3.len(), 1, "{f:?}");
        assert!(a3[0].fix.is_some(), "fusion fix attached: {a3:?}");
    }

    #[test]
    fn a4_fires_on_large_byval_param() {
        let f = findings_of(&[(
            "crates/netsim/src/port.rs",
            "pub struct Big { pub a: u64, pub b: u64, pub c: u64, pub d: u64,\n\
                 pub e: u64, pub f: u64, pub g: u64, pub h: u64, pub i: u64 }\n\
             pub fn step(b: Big) -> u64 { sink(b) }\n\
             fn sink(b: Big) -> u64 { b.a }\n",
        )]);
        let a4: Vec<_> = f.iter().filter(|x| x.rule == Rule::A4).collect();
        assert_eq!(a4.len(), 2, "root and callee both fire: {f:?}");
        assert!(a4[0].message.contains("72 bytes"), "{}", a4[0].message);
    }
}
