//! Self-test: the known-bad fixture files must each trigger their rule
//! (with correct file:line attribution), suppressions must silence, and
//! clean code must stay clean. These fixtures are also what CI's
//! `simlint` job can be pointed at to prove the binary exits nonzero.

use std::path::Path;

use simlint::{analyze_files, fix_source_set, scan_source, scan_tree, Rule};

fn fixture(name: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture file exists");
    (name.to_string(), src)
}

fn rules_of(name: &str) -> Vec<(Rule, usize)> {
    let (display, src) = fixture(name);
    scan_source(&display, &src)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

/// Load a fixture plus the shared unit definitions, run the full v1+v2
/// pipeline, and return the findings attributed to the named fixture.
fn v2_findings(name: &str) -> Vec<simlint::Finding> {
    let files = vec![fixture("dcsim/units.rs"), fixture(name)];
    let analysis = analyze_files(&files);
    assert!(
        analysis.parse_failures.is_empty(),
        "{:?}",
        analysis.parse_failures
    );
    analysis
        .findings
        .into_iter()
        .filter(|f| f.path == name)
        .collect()
}

#[test]
fn d1_fixture_fires_on_each_hash_site() {
    let got = rules_of("bad_d1_hashmap.rs");
    assert_eq!(got.len(), 5, "{got:?}"); // 2 uses + fn sig + 2 constructors
    assert!(got.iter().all(|(r, _)| *r == Rule::D1));
    assert!(got.iter().any(|(_, l)| *l == 2), "use line attributed");
}

#[test]
fn d2_fixture_fires_on_both_clocks() {
    let got = rules_of("bad_d2_wallclock.rs");
    assert_eq!(got.len(), 3, "{got:?}"); // use + Instant::now + SystemTime::now
    assert!(got.iter().all(|(r, _)| *r == Rule::D2));
}

#[test]
fn d3_fixture_fires_on_rand_and_randomstate() {
    let got = rules_of("bad_d3_randomness.rs");
    assert!(got.len() >= 2, "{got:?}");
    assert!(got.iter().all(|(r, _)| *r == Rule::D3));
}

#[test]
fn d4_fixture_fires_on_both_casts() {
    let got = rules_of("bad_d4_lossy_cast.rs");
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(got.iter().all(|(r, _)| *r == Rule::D4));
    assert_eq!(got[0].1, 3);
    assert_eq!(got[1].1, 7);
}

#[test]
fn d5_fixture_fires_on_unwrap_and_empty_expect() {
    let got = rules_of("bad_d5_unwrap.rs");
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(got.iter().all(|(r, _)| *r == Rule::D5));
}

#[test]
fn d6_fixture_fires_on_private_rng_and_raw_stream() {
    let got = rules_of("bad_d6_fault_rng.rs");
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(got.iter().all(|(r, _)| *r == Rule::D6));
    assert_eq!(got[0].1, 7, "private DetRng::new attributed");
    assert_eq!(got[1].1, 8, "raw stream borrow attributed");
}

#[test]
fn suppressed_fixture_is_silent() {
    assert!(rules_of("suppressed_ok.rs").is_empty());
}

#[test]
fn clean_fixture_is_silent() {
    assert!(rules_of("clean_ok.rs").is_empty());
}

#[test]
fn u1_fixture_fires_on_every_mixing_direction() {
    let got = v2_findings("bad_u1_mixed_arith.rs");
    let lines: Vec<usize> = got.iter().map(|f| f.line).collect();
    assert!(got.iter().all(|f| f.rule == Rule::U1), "{got:?}");
    assert_eq!(lines, vec![7, 11, 15, 19], "{got:?}");
    // Unit mixing has no mechanical rewrite: the right unit is a design
    // decision, so U1 never offers a fix.
    assert!(got.iter().all(|f| f.fix.is_none()));
}

#[test]
fn u2_fixture_fires_and_offers_as_u64() {
    let got = v2_findings("bad_u2_newtype_escape.rs");
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(got.iter().all(|f| f.rule == Rule::U2));
    assert!(got.iter().all(|f| {
        f.fix
            .as_ref()
            .is_some_and(|fix| fix.replacement == ".as_u64()")
    }));
}

#[test]
fn u3_fixture_fires_and_offers_named_constructors() {
    let got = v2_findings("bad_u3_raw_construction.rs");
    assert_eq!(got.len(), 3, "{got:?}");
    assert!(got.iter().all(|f| f.rule == Rule::U3));
    let reps: Vec<&str> = got
        .iter()
        .map(|f| f.fix.as_ref().expect("U3 is fixable").replacement.as_str())
        .collect();
    assert_eq!(
        reps,
        vec![
            "Nanos::ZERO",
            "Bytes::new(1000)",
            "BitRate::from_bps(100_000_000_000)"
        ]
    );
}

#[test]
fn o1_fixture_fires_on_add_mul_and_compound_assign() {
    let got = v2_findings("dcsim/bad_o1_overflow.rs");
    assert_eq!(got.len(), 3, "{got:?}");
    assert!(got.iter().all(|f| f.rule == Rule::O1 && f.fix.is_some()));
    let reps: Vec<&str> = got
        .iter()
        .map(|f| f.fix.as_ref().expect("checked above").replacement.as_str())
        .collect();
    assert_eq!(
        reps,
        vec![
            "now.as_u64().saturating_add(step.as_u64())",
            "t.as_u64().saturating_mul(n)",
            "total = total.saturating_add(t.as_u64())",
        ]
    );
}

#[test]
fn e1_fixture_fires_only_on_the_unguarded_wildcard() {
    let got = v2_findings("bad_e1_wildcard.rs");
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].rule, Rule::E1);
    assert_eq!(got[0].line, 13);
    assert!(got[0].message.contains("Stock, Vai, VaiSf"));
}

#[test]
fn s1_fixture_flags_the_stale_allow_with_a_deletion_fix() {
    let got = v2_findings("bad_s1_stale_allow.rs");
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].rule, Rule::S1);
    let fix = got[0].fix.as_ref().expect("S1 deletes the comment");
    assert!(fix.replacement.is_empty());
}

#[test]
fn clean_units_fixture_is_silent() {
    assert!(v2_findings("clean_units_ok.rs").is_empty());
}

#[test]
fn parse_error_fixture_reports_a_failure_not_findings() {
    let files = vec![fixture("parse_error.rs")];
    let analysis = analyze_files(&files);
    assert_eq!(analysis.parse_failures.len(), 1);
    assert_eq!(analysis.parse_failures[0].path, "parse_error.rs");
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
}

#[test]
fn autofix_converges_and_is_idempotent() {
    // One pass of fix_source_set must clear every fixable finding; a
    // second pass must be a no-op (this is what CI's `--fix && git diff
    // --exit-code` step relies on).
    let mut files = vec![
        fixture("dcsim/units.rs"),
        fixture("bad_u2_newtype_escape.rs"),
        fixture("bad_u3_raw_construction.rs"),
        fixture("dcsim/bad_o1_overflow.rs"),
        fixture("bad_s1_stale_allow.rs"),
    ];
    let applied = fix_source_set(&mut files);
    assert!(
        applied >= 9,
        "expected all fixable findings fixed: {applied}"
    );

    let after = analyze_files(&files);
    assert!(
        after.findings.iter().all(|f| f.fix.is_none()),
        "fixable findings survived --fix: {:?}",
        after.findings
    );

    let snapshot = files.clone();
    let again = fix_source_set(&mut files);
    assert_eq!(again, 0, "second --fix pass must change nothing");
    assert_eq!(files, snapshot);
}

#[test]
fn p1_fixture_fires_on_both_statics_and_thread_local() {
    let got = v2_findings("bad_p1_shared_static.rs");
    assert!(got.iter().all(|f| f.rule == Rule::P1), "{got:?}");
    let lines: Vec<usize> = got.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![8, 10, 12], "{got:?}"); // static mut, atomic, thread_local!
                                                   // The hot-path-reachable static carries a witness call chain.
    assert!(
        got[1]
            .message
            .contains("run (bad_p1_shared_static.rs:16) → bump"),
        "witness chain rendered: {}",
        got[1].message
    );
}

#[test]
fn p2_fixture_fires_locally_and_through_the_call_chain() {
    let got = v2_findings("bad_p2_unstable_iter.rs");
    let p2: Vec<_> = got.iter().filter(|f| f.rule == Rule::P2).collect();
    assert_eq!(p2.len(), 2, "{got:?}");
    // Interprocedural: schedule_ready consumes gather_ready's hash-ordered
    // results; reported at the call site, no mechanical fix.
    assert_eq!(p2[0].line, 19);
    assert!(
        p2[0].message.contains("chain: gather_ready"),
        "{}",
        p2[0].message
    );
    assert!(p2[0].fix.is_none());
    // Local: report's own iteration, with the BTreeMap container swap.
    assert_eq!(p2[1].line, 27);
    let fix = p2[1]
        .fix
        .as_ref()
        .expect("local P2 offers the container swap");
    assert!(fix.replacement.contains("BTreeMap") && !fix.replacement.contains("HashMap"));
}

#[test]
fn p3_fixture_fires_on_every_discipline_breach() {
    let got = v2_findings("bad_p3_stream_context.rs");
    assert!(got.iter().all(|f| f.rule == Rule::P3), "{got:?}");
    let lines: Vec<usize> = got.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![13, 18, 22, 26], "{got:?}");
    // Private DetRng::new two hops below RED-marked code, caught via chain.
    assert!(got[0].message.contains("red_mark") && got[0].message.contains("DetRng::new"));
    // ECMP code borrowing RED's stream by number.
    assert!(got[1].message.contains("ECMP") && got[1].message.contains("RED"));
    // Raw stream number where the named constant exists.
    assert!(got[2].message.contains("ECMP_STREAM"));
    // Named constant of the wrong subsystem.
    assert!(got[3].message.contains("RED_STREAM"));
}

#[test]
fn p4_fixture_fires_on_declarations_and_push_sites() {
    let got = v2_findings("bad_p4_time_key.rs");
    assert!(got.iter().all(|f| f.rule == Rule::P4), "{got:?}");
    let lines: Vec<usize> = got.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![8, 13, 17, 18], "{got:?}");
    // Only the tuple-keyed declaration has a mechanical fix: insert the
    // u64 tiebreak slot.
    let fix = got[2]
        .fix
        .as_ref()
        .expect("tuple-keyed declaration is fixable");
    assert_eq!(fix.replacement, " u64,");
    assert!(got[0].fix.is_none() && got[1].fix.is_none() && got[3].fix.is_none());
}

#[test]
fn p5_fixture_fires_locally_and_through_the_call_chain() {
    let got = v2_findings("bad_p5_float_reduction.rs");
    let p5: Vec<_> = got.iter().filter(|f| f.rule == Rule::P5).collect();
    assert_eq!(p5.len(), 2, "{got:?}");
    assert_eq!(p5[0].line, 11, "direct HashMap sum attributed");
    assert_eq!(p5[1].line, 27, "reduction over tainted producer attributed");
    assert!(
        p5[1].message.contains("chain: gather_samples"),
        "{}",
        p5[1].message
    );
}

#[test]
fn a1_fixture_fires_on_every_hot_allocation_with_witness_chains() {
    let got = v2_findings("bad_a1_hot_alloc.rs");
    let a1: Vec<_> = got.iter().filter(|f| f.rule == Rule::A1).collect();
    let lines: Vec<usize> = a1.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![11, 12, 16, 18], "{got:?}");
    // Every finding names the chain from the per-event root.
    assert!(a1
        .iter()
        .all(|f| f.message.contains("hot chain: step") && f.message.contains("bad_a1")));
    // Loop escalation on the push; reserve fix on the declaration.
    assert!(
        a1[3].message.contains("every iteration"),
        "{}",
        a1[3].message
    );
    let fix = a1[2]
        .fix
        .as_ref()
        .expect("Vec::new decl gets the reserve fix");
    assert_eq!(fix.replacement, "Vec::with_capacity(xs.len())");
    assert!(a1[3].fix.is_none(), "push site carries no fix of its own");
}

#[test]
fn a2_fixture_fires_on_the_boxed_variant() {
    let got = v2_findings("bad_a2_boxed_event.rs");
    let a2: Vec<_> = got.iter().filter(|f| f.rule == Rule::A2).collect();
    assert_eq!(a2.len(), 1, "{got:?}");
    assert_eq!(a2[0].line, 10, "attributed to the enum declaration");
    assert!(
        a2[0].message.contains("Event::Arrive") && a2[0].message.contains("12 bytes"),
        "{}",
        a2[0].message
    );
}

#[test]
fn a3_fixture_fires_on_chain_and_for_head_with_fusion_fixes() {
    let got = v2_findings("bad_a3_collect_reiter.rs");
    let a3: Vec<_> = got.iter().filter(|f| f.rule == Rule::A3).collect();
    let lines: Vec<usize> = a3.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![7, 14], "{got:?}");
    // Both sites fuse by deleting the materialization.
    for f in &a3 {
        let fix = f.fix.as_ref().expect("A3 fusion fix present");
        assert!(fix.replacement.is_empty(), "fusion deletes, never rewrites");
    }
}

#[test]
fn a4_fixture_fires_on_both_hot_call_edges() {
    let got = v2_findings("bad_a4_byval_hot.rs");
    let a4: Vec<_> = got.iter().filter(|f| f.rule == Rule::A4).collect();
    let lines: Vec<usize> = a4.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![17, 21], "{got:?}");
    assert!(
        a4.iter().all(|f| f.message.contains("~80 bytes")),
        "{got:?}"
    );
    assert!(
        a4[1].message.contains("step") && a4[1].message.contains("sink"),
        "callee chain runs from the root: {}",
        a4[1].message
    );
}

#[test]
fn a_rule_autofixes_converge_and_are_idempotent() {
    let mut files = vec![
        fixture("dcsim/units.rs"),
        fixture("bad_a1_hot_alloc.rs"),
        fixture("bad_a3_collect_reiter.rs"),
    ];
    let applied = fix_source_set(&mut files);
    assert!(applied >= 3, "A1 reserve + two A3 fusions: {applied}");
    let a1_src = &files[1].1;
    assert!(
        a1_src.contains("let mut out = Vec::with_capacity(xs.len());"),
        "reserve inserted at the declaration: {a1_src}"
    );
    let a3_src = &files[2].1;
    assert!(
        !a3_src.contains(".collect::<"),
        "both materializations deleted: {a3_src}"
    );
    assert!(
        a3_src.contains("for x in xs.iter().map(|v| v + 1) {"),
        "for-head now iterates the fused chain: {a3_src}"
    );

    let after = analyze_files(&files);
    assert!(
        after.findings.iter().all(|f| f.fix.is_none()),
        "fixable findings survived --fix: {:?}",
        after.findings
    );

    let snapshot = files.clone();
    assert_eq!(
        fix_source_set(&mut files),
        0,
        "second --fix pass must change nothing"
    );
    assert_eq!(files, snapshot);
}

#[test]
fn p_rule_autofixes_converge_and_are_idempotent() {
    let mut files = vec![
        fixture("dcsim/units.rs"),
        fixture("bad_p2_unstable_iter.rs"),
        fixture("bad_p4_time_key.rs"),
    ];
    let applied = fix_source_set(&mut files);
    assert!(applied >= 2, "P2 swap + P4 slot insertion: {applied}");
    let p2_src = &files[1].1;
    assert!(
        p2_src.contains("let mut seen: BTreeMap<u64, u64> = BTreeMap::new();"),
        "container swapped on the declaration: {p2_src}"
    );
    let p4_src = &files[2].1;
    assert!(
        p4_src.contains("BinaryHeap<(Nanos, u64, FlowId)> = BinaryHeap::new()"),
        "tiebreak slot inserted: {p4_src}"
    );

    let after = analyze_files(&files);
    assert!(
        after.findings.iter().all(|f| f.fix.is_none()),
        "fixable findings survived --fix: {:?}",
        after.findings
    );

    let snapshot = files.clone();
    assert_eq!(
        fix_source_set(&mut files),
        0,
        "second --fix pass must change nothing"
    );
    assert_eq!(files, snapshot);
}

#[test]
fn scanning_the_fixture_tree_reports_every_bad_file() {
    // Pointing the walker directly at fixtures/ (as CI does to prove the
    // nonzero exit path) must reproduce all of the above findings.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let (findings, scanned) = scan_tree(&root).expect("fixtures dir scans");
    assert_eq!(scanned, 26, "all fixture files scanned");
    let bad_files: std::collections::BTreeSet<&str> =
        findings.iter().map(|f| f.path.as_str()).collect();
    assert_eq!(
        bad_files.into_iter().collect::<Vec<_>>(),
        vec![
            "bad_a1_hot_alloc.rs",
            "bad_a2_boxed_event.rs",
            "bad_a3_collect_reiter.rs",
            "bad_a4_byval_hot.rs",
            "bad_d1_hashmap.rs",
            "bad_d2_wallclock.rs",
            "bad_d3_randomness.rs",
            "bad_d4_lossy_cast.rs",
            "bad_d5_unwrap.rs",
            "bad_d6_fault_rng.rs",
            "bad_e1_wildcard.rs",
            "bad_p1_shared_static.rs",
            "bad_p2_unstable_iter.rs",
            "bad_p3_stream_context.rs",
            "bad_p4_time_key.rs",
            "bad_p5_float_reduction.rs",
            "bad_s1_stale_allow.rs",
            "bad_u1_mixed_arith.rs",
            "bad_u2_newtype_escape.rs",
            "bad_u3_raw_construction.rs",
            "dcsim/bad_o1_overflow.rs",
        ]
    );
}
