//! Self-test: the known-bad fixture files must each trigger their rule
//! (with correct file:line attribution), suppressions must silence, and
//! clean code must stay clean. These fixtures are also what CI's
//! `simlint` job can be pointed at to prove the binary exits nonzero.

use std::path::Path;

use simlint::{scan_source, scan_tree, Rule};

fn fixture(name: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture file exists");
    (name.to_string(), src)
}

fn rules_of(name: &str) -> Vec<(Rule, usize)> {
    let (display, src) = fixture(name);
    scan_source(&display, &src)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn d1_fixture_fires_on_each_hash_site() {
    let got = rules_of("bad_d1_hashmap.rs");
    assert_eq!(got.len(), 5, "{got:?}"); // 2 uses + fn sig + 2 constructors
    assert!(got.iter().all(|(r, _)| *r == Rule::D1));
    assert!(got.iter().any(|(_, l)| *l == 2), "use line attributed");
}

#[test]
fn d2_fixture_fires_on_both_clocks() {
    let got = rules_of("bad_d2_wallclock.rs");
    assert_eq!(got.len(), 3, "{got:?}"); // use + Instant::now + SystemTime::now
    assert!(got.iter().all(|(r, _)| *r == Rule::D2));
}

#[test]
fn d3_fixture_fires_on_rand_and_randomstate() {
    let got = rules_of("bad_d3_randomness.rs");
    assert!(got.len() >= 2, "{got:?}");
    assert!(got.iter().all(|(r, _)| *r == Rule::D3));
}

#[test]
fn d4_fixture_fires_on_both_casts() {
    let got = rules_of("bad_d4_lossy_cast.rs");
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(got.iter().all(|(r, _)| *r == Rule::D4));
    assert_eq!(got[0].1, 3);
    assert_eq!(got[1].1, 7);
}

#[test]
fn d5_fixture_fires_on_unwrap_and_empty_expect() {
    let got = rules_of("bad_d5_unwrap.rs");
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(got.iter().all(|(r, _)| *r == Rule::D5));
}

#[test]
fn suppressed_fixture_is_silent() {
    assert!(rules_of("suppressed_ok.rs").is_empty());
}

#[test]
fn clean_fixture_is_silent() {
    assert!(rules_of("clean_ok.rs").is_empty());
}

#[test]
fn scanning_the_fixture_tree_reports_every_bad_file() {
    // Pointing the walker directly at fixtures/ (as CI does to prove the
    // nonzero exit path) must reproduce all of the above findings.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let (findings, scanned) = scan_tree(&root).expect("fixtures dir scans");
    assert_eq!(scanned, 7, "all fixture files scanned");
    let bad_files: std::collections::BTreeSet<&str> =
        findings.iter().map(|f| f.path.as_str()).collect();
    assert_eq!(
        bad_files.into_iter().collect::<Vec<_>>(),
        vec![
            "bad_d1_hashmap.rs",
            "bad_d2_wallclock.rs",
            "bad_d3_randomness.rs",
            "bad_d4_lossy_cast.rs",
            "bad_d5_unwrap.rs",
        ]
    );
}

#[test]
fn simlint_scans_its_own_source_cleanly() {
    // The scanner's own crate (pattern strings, fixture literals in tests)
    // must not self-flag: rule tokens live inside string literals, which
    // the lexer strips before matching.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (findings, scanned) = scan_tree(root).expect("crate scans");
    assert!(scanned >= 3, "lib, main, tests scanned");
    assert!(findings.is_empty(), "{findings:?}");
}
