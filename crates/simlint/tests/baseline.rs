//! The `--baseline` ratchet: render/parse round-trips, tolerated vs new
//! findings split cleanly, swept entries go stale, and malformed files
//! are hard errors (a silently dropped entry would un-suppress a
//! finding with no explanation).

use simlint::{analyze_files, Baseline, Rule};

/// A two-file workspace with one hot-path allocation finding.
fn hot_findings() -> Vec<simlint::Finding> {
    let files = vec![(
        "crates/netsim/src/port.rs".to_string(),
        "pub struct Port;\n\
         impl Port {\n\
             pub fn enqueue(&mut self) { let _b = Box::new(1u64); }\n\
         }\n"
        .to_string(),
    )];
    let analysis = analyze_files(&files);
    assert!(analysis.parse_failures.is_empty());
    analysis
        .findings
        .into_iter()
        .filter(|f| f.rule == Rule::A1)
        .collect()
}

#[test]
fn render_parse_round_trip_tolerates_exactly_the_rendered_findings() {
    let findings = hot_findings();
    assert_eq!(findings.len(), 1, "{findings:?}");
    let text = Baseline::render(&findings);
    assert!(text.starts_with("# simlint baseline v1\n"), "{text}");
    let baseline = Baseline::parse(&text).expect("rendered baseline parses");
    assert_eq!(baseline.len(), findings.len());
    let (new, tolerated) = baseline.split(&findings);
    assert!(new.is_empty(), "round-tripped findings are all tolerated");
    assert_eq!(tolerated.len(), findings.len());
    assert!(baseline.stale(&findings).is_empty());
}

#[test]
fn a_new_finding_is_not_masked_by_an_unrelated_entry() {
    let findings = hot_findings();
    let baseline =
        Baseline::parse("# simlint baseline v1\nA1\tcrates/netsim/src/other.rs\t9\tnote\n")
            .expect("parses");
    let (new, tolerated) = baseline.split(&findings);
    assert_eq!(new.len(), findings.len(), "different site stays a failure");
    assert!(tolerated.is_empty());
}

#[test]
fn swept_entries_report_stale_so_the_ratchet_shrinks() {
    let findings = hot_findings();
    let mut text = Baseline::render(&findings);
    text.push_str("A1\tcrates/netsim/src/gone.rs\t3\tswept away\n");
    let baseline = Baseline::parse(&text).expect("parses");
    let stale = baseline.stale(&findings);
    assert_eq!(
        stale,
        vec![(
            "A1".to_string(),
            "crates/netsim/src/gone.rs".to_string(),
            3usize
        )]
    );
}

#[test]
fn malformed_and_unknown_rule_lines_are_hard_errors() {
    assert!(
        Baseline::parse("A1 crates/x.rs 3\n").is_err(),
        "spaces, not tabs"
    );
    assert!(
        Baseline::parse("Z9\tcrates/x.rs\t3\tnote\n").is_err(),
        "unknown rule"
    );
    assert!(
        Baseline::parse("A1\tcrates/x.rs\tthree\tnote\n").is_err(),
        "bad line no"
    );
    let ok = Baseline::parse("# comment\n\nA1\tcrates/x.rs\t3\n").expect("note optional");
    assert_eq!(ok.len(), 1);
}
