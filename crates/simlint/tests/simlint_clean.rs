//! Self-lint: the analyzer's own crate must scan clean under the full
//! rule set, including the interprocedural P family. The scanner's
//! pattern strings and the fixture literals embedded in tests must not
//! self-flag: rule tokens live inside string literals, which the lexer
//! strips before matching. Paths are re-prefixed with the crate's
//! workspace location so rule scoping sees the files exactly as the
//! workspace scan does (the analyzer's own tolerant wildcard matches are
//! Support-scope, where E1 deliberately does not apply).

use std::path::Path;

use simlint::analyze_files;

#[test]
fn simlint_scans_its_own_source_cleanly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files: Vec<(String, String)> = simlint::read_tree(root)
        .expect("crate scans")
        .into_iter()
        .map(|(path, src)| (format!("crates/simlint/{path}"), src))
        .collect();
    assert!(files.len() >= 3, "lib, main, tests scanned");
    let analysis = analyze_files(&files);
    assert!(
        analysis.parse_failures.is_empty(),
        "{:?}",
        analysis.parse_failures
    );
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
}
