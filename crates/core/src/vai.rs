//! Variable Additive Increase (paper Section IV-A, Algorithms 1 and 2).
//!
//! VAI exploits two observations:
//!
//! 1. bandwidth allocations become unfair when a new flow joins (new flows
//!    start at line rate in RDMA networks), and
//! 2. a new flow joining produces a sharp congestion increase at the
//!    bottleneck (the queue grows by roughly the new flow's BDP).
//!
//! So VAI treats *congestion above a threshold* as evidence of unfairness
//! and converts it into **AI tokens**: temporary multipliers on the
//! protocol's base additive-increase step. Bigger AI forces more frequent,
//! larger AIMD cycles, which is exactly what redistributes bandwidth — at a
//! transient latency cost that the paper shows is near zero in practice.
//!
//! Because added AI itself causes queueing, VAI could feed back on itself;
//! the **dampener** divides the spent tokens while congestion persists and
//! only resets once the bank is empty *and* a whole RTT passes with no
//! congestion at all (then the loop provably has no input left).
//!
//! This type is protocol-agnostic: HPCC feeds it queue depths in bytes and
//! Swift feeds it queueing delay in nanoseconds; both use the same algebra.

/// Tunables for [`VariableAi`] (paper Section VI-A gives the defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VaiConfig {
    /// Congestion level above which tokens are generated. The paper uses
    /// the network's minimum BDP (≈ 50 KB of queue for HPCC; the
    /// BDP-equivalent delay, 4 µs past target, for Swift): a freshly joined
    /// line-rate flow standing for one RTT creates at least this much queue.
    pub token_thresh: f64,
    /// Divisor converting measured congestion into tokens
    /// (`AI_DIV`; 1 KB of queue per token in HPCC, 30 ns of delay per token
    /// in Swift).
    pub ai_div: f64,
    /// Maximum number of banked tokens (`Bank_Cap`, paper default 1000).
    pub bank_cap: f64,
    /// Maximum tokens spendable in one rate-update period (`AI_Cap`,
    /// paper default 100).
    pub ai_cap: f64,
    /// The dampener divisor scale (`Dampener_Constant`, paper default 8).
    pub dampener_constant: f64,
}

impl VaiConfig {
    /// The paper's HPCC parameterization: congestion measured as queue
    /// depth in bytes, threshold = minimum BDP.
    pub fn hpcc_default(min_bdp_bytes: f64) -> Self {
        VaiConfig {
            token_thresh: min_bdp_bytes,
            ai_div: 1_000.0, // one token per KByte of queue
            bank_cap: 1_000.0,
            ai_cap: 100.0,
            dampener_constant: 8.0,
        }
    }

    /// The paper's Swift parameterization: congestion measured as queueing
    /// delay (nanoseconds above target); threshold = the delay the minimum
    /// BDP induces (4 µs at 100 Gbps for 50 KB).
    pub fn swift_default(bdp_delay_ns: f64) -> Self {
        VaiConfig {
            token_thresh: bdp_delay_ns,
            ai_div: 30.0, // one token per 30 ns of queueing delay
            bank_cap: 1_000.0,
            ai_cap: 100.0,
            dampener_constant: 8.0,
        }
    }
}

/// The Variable AI state machine (Algorithms 1 and 2).
///
/// ```
/// use faircc::{VaiConfig, VariableAi};
///
/// // HPCC parameterization: queue depth in bytes, threshold = min BDP.
/// let mut vai = VariableAi::new(VaiConfig::hpcc_default(50_000.0));
///
/// // A new line-rate flow joined: one RTT of 120 KB queues.
/// vai.observe(120_000.0, true);
/// vai.on_rtt_end();
/// assert_eq!(vai.bank(), 120.0); // one token per KB
///
/// // The next additive increase is multiplied accordingly (capped at
/// // AI_Cap = 100, shrunk by the dampener).
/// let m = vai.ai_multiplier(true);
/// assert!(m > 1.0 && m <= 100.0);
/// ```
///
/// Call pattern, per flow:
///
/// * [`observe`](Self::observe) on every ACK with that ACK's congestion
///   measure (and whether the protocol saw *any* congestion signal);
/// * [`on_rtt_end`](Self::on_rtt_end) once per RTT (Algorithm 1: token
///   generation and dampener bookkeeping);
/// * [`ai_multiplier`](Self::ai_multiplier) whenever the protocol performs
///   an additive increase (Algorithm 2: token spend). The protocol
///   multiplies its base AI by the returned factor (≥ 1).
#[derive(Debug, Clone)]
pub struct VariableAi {
    cfg: VaiConfig,
    bank: f64,
    dampener: f64,
    /// Maximum congestion measure observed since the last RTT boundary —
    /// the "Measured Congestion" of Algorithm 1.
    measured: f64,
    /// Whether *any* congestion signal at all arrived this RTT. Distinct
    /// from `measured > 0`: e.g. HPCC counts "no congestion" as max
    /// utilization staying below target the whole RTT, even while queues
    /// are tiny but nonzero.
    any_congestion: bool,
}

impl VariableAi {
    /// A fresh instance with empty bank and zero dampener (the state a new
    /// flow starts in — the paper notes this gives new flows a brief AI
    /// advantage that it found benign in practice).
    pub fn new(cfg: VaiConfig) -> Self {
        assert!(cfg.token_thresh > 0.0, "token threshold must be positive");
        assert!(cfg.ai_div > 0.0, "AI_DIV must be positive");
        VariableAi {
            cfg,
            bank: 0.0,
            dampener: 0.0,
            measured: 0.0,
            any_congestion: false,
        }
    }

    /// Record one feedback sample inside the current RTT.
    ///
    /// `congestion` is the protocol's congestion measure (queue bytes for
    /// HPCC, excess delay in ns for Swift); `congested` is the protocol's
    /// own "this sample indicates congestion" predicate.
    #[inline]
    pub fn observe(&mut self, congestion: f64, congested: bool) {
        if congestion > self.measured {
            self.measured = congestion;
        }
        self.any_congestion |= congested;
    }

    /// Algorithm 1: run at every RTT boundary.
    pub fn on_rtt_end(&mut self) {
        let meas = self.measured;
        let thresh = self.cfg.token_thresh;

        // Lines 2-4: mint tokens proportional to congestion above threshold.
        if meas > thresh {
            self.bank = (meas / self.cfg.ai_div + self.bank).min(self.cfg.bank_cap);
        }

        // Lines 5-13: dampener bookkeeping.
        if meas > thresh {
            self.dampener += meas / thresh;
        } else if self.bank == 0.0 {
            if !self.any_congestion {
                // No token input and no congestion: the feedback loop has
                // no remaining stimulus, safe to fully reset.
                self.dampener = 0.0;
            } else if meas < thresh {
                self.dampener = (self.dampener - 1.0).max(0.0);
            }
        }

        // Line 14.
        self.measured = 0.0;
        self.any_congestion = false;
        self.audit_bounds();
    }

    /// sim-audit: the paper's state bounds. The bank stays in
    /// `[0, Bank_Cap]`, the dampener never goes negative, and the measured
    /// congestion accumulator is non-negative by construction.
    fn audit_bounds(&self) {
        dcsim::audit_assert!(
            self.bank >= 0.0 && self.bank <= self.cfg.bank_cap,
            "VAI bank {} outside [0, {}]",
            self.bank,
            self.cfg.bank_cap
        );
        dcsim::audit_assert!(
            self.dampener >= 0.0,
            "VAI dampener {} went negative",
            self.dampener
        );
        dcsim::audit_assert!(
            self.measured >= 0.0,
            "VAI measured congestion {} went negative",
            self.measured
        );
    }

    /// Test hook: corrupt the token bank so audit tests can prove the
    /// bounds check fires. Compiled only with `sim-audit`.
    #[cfg(feature = "sim-audit")]
    pub fn audit_corrupt_bank(&mut self, bank: f64) {
        self.bank = bank;
    }

    /// Algorithm 2: how many effective tokens to apply to this rate update.
    ///
    /// Returns the factor to multiply the protocol's base AI by (always
    /// ≥ 1 — with an empty bank VAI degenerates to the protocol's default
    /// behaviour). `spend` must be true when this update is a rate
    /// *adjustment period* (the paper: tokens are removed every decrease
    /// period when the rate is decreasing, and every RTT when increasing).
    pub fn ai_multiplier(&mut self, spend: bool) -> f64 {
        let tokens = self.cfg.ai_cap.min(self.bank);
        if spend {
            self.bank = (self.bank - tokens).max(0.0);
        }
        let divisor = self.dampener / self.cfg.dampener_constant + 1.0;
        let m = (tokens / divisor).max(1.0);
        dcsim::audit_assert!(
            m >= 1.0 && m <= self.cfg.ai_cap.max(1.0),
            "VAI multiplier {m} outside [1, {}]",
            self.cfg.ai_cap
        );
        self.audit_bounds();
        m
    }

    /// Current banked tokens (for instrumentation/tests).
    pub fn bank(&self) -> f64 {
        self.bank
    }

    /// Current dampener value (for instrumentation/tests).
    pub fn dampener(&self) -> f64 {
        self.dampener
    }

    /// The configuration in use.
    pub fn config(&self) -> &VaiConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::DetRng;

    fn cfg() -> VaiConfig {
        // Threshold 50 KB, 1 token/KB: the paper's HPCC setting.
        VaiConfig::hpcc_default(50_000.0)
    }

    #[test]
    fn no_congestion_no_tokens() {
        let mut vai = VariableAi::new(cfg());
        vai.observe(10_000.0, false);
        vai.on_rtt_end();
        assert_eq!(vai.bank(), 0.0);
        assert_eq!(vai.ai_multiplier(true), 1.0);
    }

    #[test]
    fn congestion_above_threshold_mints_tokens() {
        let mut vai = VariableAi::new(cfg());
        // A new 100 Gbps flow standing for an RTT ≈ one BDP of queue:
        vai.observe(100_000.0, true);
        vai.on_rtt_end();
        assert_eq!(vai.bank(), 100.0); // 100 KB / 1 KB-per-token
        assert!(vai.dampener() > 0.0); // 100k/50k = 2
    }

    #[test]
    fn bank_caps_at_bank_cap() {
        let mut vai = VariableAi::new(cfg());
        for _ in 0..100 {
            vai.observe(100_000.0, true);
            vai.on_rtt_end();
        }
        assert_eq!(vai.bank(), 1_000.0);
    }

    #[test]
    fn multiplier_caps_at_ai_cap() {
        let mut vai = VariableAi::new(cfg());
        // Fill the bank well past AI_Cap.
        for _ in 0..20 {
            vai.observe(200_000.0, true);
            vai.on_rtt_end();
        }
        // Dampener has grown (4 per RTT * 20 = 80); divisor = 80/8+1 = 11.
        let d = vai.dampener();
        let expect = (100.0 / (d / 8.0 + 1.0)).max(1.0);
        let m = vai.ai_multiplier(true);
        assert!((m - expect).abs() < 1e-9, "m={m} expect={expect}");
        assert!(m <= 100.0);
    }

    #[test]
    fn spend_drains_bank() {
        let mut vai = VariableAi::new(cfg());
        vai.observe(150_000.0, true);
        vai.on_rtt_end();
        assert_eq!(vai.bank(), 150.0);
        vai.ai_multiplier(true); // spends min(100, 150) = 100
        assert_eq!(vai.bank(), 50.0);
        vai.ai_multiplier(true); // spends remaining 50
        assert_eq!(vai.bank(), 0.0);
        // Bank empty: back to base AI.
        assert_eq!(vai.ai_multiplier(true), 1.0);
    }

    #[test]
    fn non_spending_update_keeps_bank() {
        let mut vai = VariableAi::new(cfg());
        vai.observe(150_000.0, true);
        vai.on_rtt_end();
        let before = vai.bank();
        vai.ai_multiplier(false);
        assert_eq!(vai.bank(), before);
    }

    #[test]
    fn dampener_reduces_effective_tokens() {
        let mut vai = VariableAi::new(cfg());
        // Persistent heavy congestion, as in a 100-1 incast.
        for _ in 0..10 {
            vai.observe(400_000.0, true);
            vai.on_rtt_end();
        }
        // dampener = 10 * (400k/50k) = 80 → divisor = 11.
        assert!((vai.dampener() - 80.0).abs() < 1e-9);
        let m = vai.ai_multiplier(false);
        assert!((m - 100.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn dampener_resets_only_when_bank_empty_and_quiet() {
        let mut vai = VariableAi::new(cfg());
        vai.observe(100_000.0, true);
        vai.on_rtt_end();
        assert!(vai.bank() > 0.0 && vai.dampener() > 0.0);

        // Quiet RTT but bank non-empty: dampener must NOT reset (feedback
        // could still occur from spending the banked tokens).
        vai.observe(0.0, false);
        vai.on_rtt_end();
        assert!(vai.dampener() > 0.0);

        // Drain the bank.
        vai.ai_multiplier(true);
        assert_eq!(vai.bank(), 0.0);

        // Mild congestion below threshold: dampener decays by 1 per RTT.
        let d0 = vai.dampener();
        vai.observe(10_000.0, true);
        vai.on_rtt_end();
        assert!((vai.dampener() - (d0 - 1.0).max(0.0)).abs() < 1e-9);

        // Fully quiet RTT with empty bank: dampener resets to zero.
        vai.observe(0.0, false);
        vai.on_rtt_end();
        assert_eq!(vai.dampener(), 0.0);
    }

    #[test]
    fn measured_congestion_is_max_not_sum() {
        let mut vai = VariableAi::new(cfg());
        vai.observe(60_000.0, true);
        vai.observe(40_000.0, true);
        vai.observe(55_000.0, true);
        vai.on_rtt_end();
        assert_eq!(vai.bank(), 60.0); // max = 60 KB → 60 tokens
    }

    #[test]
    fn swift_default_units() {
        // 9 us target-exceeding delay with 30 ns per token.
        let mut vai = VariableAi::new(VaiConfig::swift_default(4_000.0));
        vai.observe(9_000.0, true);
        vai.on_rtt_end();
        assert_eq!(vai.bank(), 300.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        VariableAi::new(VaiConfig {
            token_thresh: 0.0,
            ..cfg()
        });
    }

    /// The bank never exceeds its cap and never goes negative,
    /// regardless of the observation sequence.
    #[test]
    fn prop_bank_bounded() {
        for case in 0..256u64 {
            let mut rng = DetRng::new(0xba4c + case);
            let mut vai = VariableAi::new(cfg());
            for _ in 0..rng.below(200) {
                let c = 500_000.0 * rng.f64();
                vai.observe(c, rng.chance(0.5));
                vai.on_rtt_end();
                let m = vai.ai_multiplier(rng.chance(0.5));
                assert!(m >= 1.0, "case {case}");
                assert!(m <= vai.config().ai_cap, "case {case}");
                assert!(vai.bank() >= 0.0, "case {case}");
                assert!(vai.bank() <= vai.config().bank_cap, "case {case}");
                assert!(vai.dampener() >= 0.0, "case {case}");
            }
        }
    }

    /// With no congestion ever observed, VAI is exactly inert: the
    /// multiplier is always 1 (the protocol's default behaviour).
    #[test]
    fn prop_inert_without_congestion() {
        for n in [0usize, 1, 3, 17, 99] {
            let mut vai = VariableAi::new(cfg());
            for _ in 0..n {
                vai.observe(0.0, false);
                vai.on_rtt_end();
                assert_eq!(vai.ai_multiplier(true), 1.0);
            }
            assert_eq!(vai.bank(), 0.0);
            assert_eq!(vai.dampener(), 0.0);
        }
    }
}
