//! Probabilistic feedback (paper Section III-D).
//!
//! DCQCN's RED marking is *probabilistic*: flows with more packets in the
//! queue are proportionally more likely to receive a congestion mark, which
//! is an inherent fairness force. INT and RTT feedback are *deterministic*:
//! every competing flow sees (almost) the same signal regardless of its
//! bandwidth share, so all flows react identically and unfairness persists.
//!
//! To demonstrate this, the paper builds "HPCC Probabilistic" and "Swift
//! Probabilistic" baselines: deterministic feedback is randomly *ignored*
//! with a probability that shrinks linearly with the flow's window:
//!
//! ```text
//! use feedback  ⇔  Current Window >= rand() % Max Window
//! ```
//!
//! i.e. a full window always reacts, a zero window never reacts, and a
//! half-size window reacts to half its congestion signals. The gate applies
//! only to multiplicative decreases that would update the reference rate —
//! rate increases are never gated.

use dcsim::DetRng;

/// The probabilistic-feedback gate for the paper's baseline variants.
#[derive(Debug)]
pub struct ProbabilisticGate {
    /// The line-rate window ("Max Window"), in the same unit the caller
    /// passes to [`should_use`](Self::should_use) (bytes here).
    max_window: f64,
    rng: DetRng,
    used: u64,
    ignored: u64,
}

impl ProbabilisticGate {
    /// Create a gate for a flow whose maximum (line-rate) window is
    /// `max_window` (bytes). `rng` must be a dedicated stream so draws
    /// cannot perturb other randomized subsystems.
    pub fn new(max_window: f64, rng: DetRng) -> Self {
        assert!(max_window > 0.0, "max window must be positive");
        ProbabilisticGate {
            max_window,
            rng,
            used: 0,
            ignored: 0,
        }
    }

    /// Decide whether to act on one congestion signal given the flow's
    /// current (per-RTT reference) window.
    ///
    /// Follows the paper's linear rule: the feedback is used with
    /// probability `current_window / max_window` (clamped to `[0, 1]`).
    pub fn should_use(&mut self, current_window: f64) -> bool {
        let p = (current_window / self.max_window).clamp(0.0, 1.0);
        let use_it = self.rng.chance(p);
        if use_it {
            self.used += 1;
        } else {
            self.ignored += 1;
        }
        use_it
    }

    /// (used, ignored) counters for instrumentation.
    pub fn counts(&self) -> (u64, u64) {
        (self.used, self.ignored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> ProbabilisticGate {
        ProbabilisticGate::new(100_000.0, DetRng::new(77))
    }

    #[test]
    fn full_window_always_reacts() {
        let mut g = gate();
        for _ in 0..1000 {
            assert!(g.should_use(100_000.0));
        }
    }

    #[test]
    fn oversized_window_always_reacts() {
        let mut g = gate();
        assert!(g.should_use(250_000.0));
    }

    #[test]
    fn zero_window_never_reacts() {
        let mut g = gate();
        for _ in 0..1000 {
            assert!(!g.should_use(0.0));
        }
        assert_eq!(g.counts(), (0, 1000));
    }

    #[test]
    fn half_window_reacts_about_half_the_time() {
        let mut g = gate();
        let n = 100_000;
        let used = (0..n).filter(|_| g.should_use(50_000.0)).count();
        let frac = used as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn probability_scales_linearly() {
        // A flow at 2x the window of another reacts ~2x as often — the
        // fairness force the paper borrows from RED.
        let mut g1 = ProbabilisticGate::new(100_000.0, DetRng::new(1));
        let mut g2 = ProbabilisticGate::new(100_000.0, DetRng::new(2));
        let n = 200_000;
        let a = (0..n).filter(|_| g1.should_use(20_000.0)).count() as f64;
        let b = (0..n).filter(|_| g2.should_use(40_000.0)).count() as f64;
        let ratio = b / a;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ProbabilisticGate::new(1000.0, DetRng::new(5));
        let mut b = ProbabilisticGate::new(1000.0, DetRng::new(5));
        for _ in 0..500 {
            assert_eq!(a.should_use(400.0), b.should_use(400.0));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_max_window_rejected() {
        ProbabilisticGate::new(0.0, DetRng::new(1));
    }
}
