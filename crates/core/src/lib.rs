//! `faircc` — fast convergence to fairness for datacenter congestion control.
//!
//! This crate implements the primary contribution of Snyder & Lebeck, *"Fast
//! Convergence to Fairness for Reduced Long Flow Tail Latency in Datacenter
//! Networks"* (IPDPS 2022): two protocol-agnostic mechanisms that make
//! sender-side congestion-control protocols converge to fair bandwidth
//! allocations quickly:
//!
//! * **Variable Additive Increase** ([`vai::VariableAi`]) — a token bank fed
//!   by observed congestion. The paper's key observation is that bandwidth
//!   allocations become unfair exactly when a new flow joins, and a new flow
//!   joining shows up as a sharp congestion increase at the bottleneck. VAI
//!   therefore converts congestion into *AI tokens* that temporarily raise
//!   the additive-increase step, forcing the small multiplicative-decrease /
//!   additive-increase cycles that AIMD needs to equalize rates — and a
//!   *dampener* keeps the extra AI from feeding back into fresh congestion.
//! * **Sampling Frequency** ([`sampling::SamplingFrequency`]) — reacting to
//!   congestion once every `s` ACKs instead of once per RTT. Flows holding
//!   more bandwidth receive proportionally more ACKs, so they decrease more
//!   often; the fluid-model analysis in the `fluid` crate proves this
//!   converges faster whenever `1/r < (C1 + C0) / (s * MTU)`.
//!
//! The crate also defines the [`cc::CongestionControl`] trait through which
//! the packet-level simulator (`netsim`) drives any protocol, the feedback
//! records ([`feedback::AckFeedback`], [`feedback::IntStack`]) those
//! protocols consume, and the probabilistic-feedback gate
//! ([`prob::ProbabilisticGate`]) used by the paper's "HPCC/Swift
//! Probabilistic" baselines.
//!
//! Protocol implementations live in sibling crates (`cc-hpcc`, `cc-swift`,
//! `cc-dcqcn`); this crate stays dependency-light so mechanisms can be reused
//! outside the simulator (e.g. in the fluid model or in unit studies).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod feedback;
pub mod prob;
pub mod sampling;
pub mod vai;

pub use cc::{CcMode, CcSnapshot, CongestionControl, SenderLimits};
// Re-exported so protocol crates implement `publish_metrics` without a
// direct simtrace dependency.
pub use feedback::{AckFeedback, IntHop, IntStack, MAX_INT_HOPS};
pub use prob::ProbabilisticGate;
pub use sampling::{SamplingFrequency, SfConfig};
pub use simtrace::MetricsRegistry;
pub use vai::{VaiConfig, VariableAi};
