//! Sampling Frequency (paper Section IV-B).
//!
//! HPCC and Swift fully react to at most one congestion signal per RTT —
//! deliberately, to avoid double-reacting to a single congestion event. But
//! reacting per-RTT removes a natural fairness force: a flow with twice the
//! bandwidth receives twice the ACKs, and reacting *per-ACK-group* makes it
//! decrease its rate twice as often. Sampling Frequency restores that force
//! with a tunable cadence: the protocol may perform a multiplicative
//! decrease every `s` acknowledgements (`s = 30` in the paper's evaluation)
//! instead of once per RTT.
//!
//! Two scope rules from the paper:
//!
//! * SF gates **decreases only**. Rate increases stay on the per-RTT
//!   schedule — if increases also ran per `s` ACKs, high-rate flows would
//!   *increase* more often too, cancelling the fairness benefit.
//! * The decrease operates on a per-sampling-period **reference rate**
//!   (HPCC already has one; the paper adds the same scheme to Swift):
//!   per-ACK adjustments are always computed *from the reference*, so
//!   reacting to several ACKs inside one period cannot compound.

/// Configuration for [`SamplingFrequency`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfConfig {
    /// Number of ACKs between permitted multiplicative decreases (the
    /// paper's `s`; 30 in the evaluation).
    pub acks_per_decrease: u32,
}

impl SfConfig {
    /// The paper's evaluation setting (`s = 30`).
    pub fn paper_default() -> Self {
        SfConfig {
            acks_per_decrease: 30,
        }
    }
}

/// The ACK-counting gate for Sampling Frequency.
///
/// ```
/// use faircc::{SamplingFrequency, SfConfig};
///
/// let mut sf = SamplingFrequency::new(SfConfig { acks_per_decrease: 3 });
/// let fires: Vec<bool> = (0..6).map(|_| sf.on_ack()).collect();
/// assert_eq!(fires, [false, false, true, false, false, true]);
/// ```
///
/// Protocols call [`on_ack`](Self::on_ack) for every acknowledgement; it
/// returns `true` when a sampling-period boundary is crossed, i.e. when the
/// protocol is now allowed to commit a multiplicative decrease (update its
/// reference rate downward).
#[derive(Debug, Clone)]
pub struct SamplingFrequency {
    cfg: SfConfig,
    acks_since_boundary: u32,
    periods_completed: u64,
}

impl SamplingFrequency {
    /// A fresh gate; the first boundary fires after `acks_per_decrease`
    /// ACKs.
    pub fn new(cfg: SfConfig) -> Self {
        assert!(cfg.acks_per_decrease > 0, "s must be at least 1");
        SamplingFrequency {
            cfg,
            acks_since_boundary: 0,
            periods_completed: 0,
        }
    }

    /// Count one ACK; returns `true` exactly at sampling-period boundaries.
    #[inline]
    pub fn on_ack(&mut self) -> bool {
        self.acks_since_boundary += 1;
        if self.acks_since_boundary >= self.cfg.acks_per_decrease {
            self.acks_since_boundary = 0;
            self.periods_completed += 1;
            true
        } else {
            false
        }
    }

    /// Restart the ACK count (e.g. after an RTT-boundary reference update,
    /// so the next period measures a full `s` fresh ACKs).
    #[inline]
    pub fn reset(&mut self) {
        self.acks_since_boundary = 0;
    }

    /// Total boundaries crossed so far (instrumentation).
    pub fn periods_completed(&self) -> u64 {
        self.periods_completed
    }

    /// The configured cadence.
    pub fn config(&self) -> SfConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::DetRng;

    #[test]
    fn boundary_every_s_acks() {
        let mut sf = SamplingFrequency::new(SfConfig {
            acks_per_decrease: 3,
        });
        let fired: Vec<bool> = (0..9).map(|_| sf.on_ack()).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(sf.periods_completed(), 3);
    }

    #[test]
    fn paper_default_is_thirty() {
        let mut sf = SamplingFrequency::new(SfConfig::paper_default());
        let fires = (0..30).filter(|_| sf.on_ack()).count();
        assert_eq!(fires, 1);
    }

    #[test]
    fn s_of_one_fires_every_ack() {
        let mut sf = SamplingFrequency::new(SfConfig {
            acks_per_decrease: 1,
        });
        assert!(sf.on_ack());
        assert!(sf.on_ack());
    }

    #[test]
    fn reset_restarts_the_period() {
        let mut sf = SamplingFrequency::new(SfConfig {
            acks_per_decrease: 3,
        });
        sf.on_ack();
        sf.on_ack();
        sf.reset();
        assert!(!sf.on_ack());
        assert!(!sf.on_ack());
        assert!(sf.on_ack());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cadence_rejected() {
        SamplingFrequency::new(SfConfig {
            acks_per_decrease: 0,
        });
    }

    /// Over any number of ACKs, the number of boundaries is exactly
    /// floor(n / s) — the fairness property that a flow with k times
    /// the ACK rate gets k times the decrease opportunities.
    #[test]
    fn prop_boundary_count_is_floor_div() {
        let mut rng = DetRng::new(0x5f);
        for _ in 0..256 {
            let n = rng.below(10_000) as u32;
            let s = 1 + rng.below(99) as u32;
            let mut sf = SamplingFrequency::new(SfConfig {
                acks_per_decrease: s,
            });
            let fires = (0..n).filter(|_| sf.on_ack()).count() as u32;
            assert_eq!(fires, n / s, "n={n} s={s}");
        }
    }
}
