//! The sender-side congestion-control interface.
//!
//! The simulator's host model is deliberately protocol-neutral: every flow
//! owns a boxed [`CongestionControl`] and consults [`SenderLimits`] before
//! each transmission. Window-based protocols (HPCC, Swift) bound the bytes
//! in flight and pace at `window / base_rtt`; rate-based protocols (DCQCN)
//! report an unbounded window and rely purely on the pacing rate.

use crate::feedback::AckFeedback;
use dcsim::{BitRate, Bytes, Nanos};

/// How the host's send loop should throttle a flow right now.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenderLimits {
    /// Maximum bytes allowed in flight (sent but unacknowledged).
    /// `f64::INFINITY` for purely rate-based protocols.
    pub window_bytes: f64,
    /// Packet pacing rate. The NIC line rate still applies on top.
    pub pacing: BitRate,
}

impl SenderLimits {
    /// A window-limited sender paced at `window / base_rtt`.
    pub fn windowed(window_bytes: f64, base_rtt: Nanos) -> Self {
        let secs = base_rtt.as_secs_f64();
        let pacing = if secs > 0.0 {
            BitRate::from_bps_f64(window_bytes * 8.0 / secs)
        } else {
            BitRate(u64::MAX)
        };
        SenderLimits {
            window_bytes,
            pacing,
        }
    }

    /// A purely rate-based sender.
    pub fn rate_based(rate: BitRate) -> Self {
        SenderLimits {
            window_bytes: f64::INFINITY,
            pacing: rate,
        }
    }
}

/// Whether a protocol is primarily window- or rate-based; used by the
/// experiment layer for reporting and by tests as a sanity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMode {
    /// Bytes-in-flight window plus pacing (HPCC, Swift).
    Window,
    /// Pure injection-rate control (DCQCN).
    Rate,
}

/// A point-in-time view of a protocol's control state, recorded by the
/// observability layer as a `cc_update` trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcSnapshot {
    /// Effective window in bytes (`f64::INFINITY` for rate-based).
    pub window_bytes: f64,
    /// Current pacing/injection rate.
    pub rate: BitRate,
    /// VAI token-bank balance, or 0 for variants without VAI.
    pub vai_bank: f64,
}

/// A sender-side congestion-control algorithm.
///
/// Implementations must be deterministic given the same sequence of calls
/// (any randomness comes from a seeded RNG owned by the instance).
pub trait CongestionControl: Send {
    /// Process one acknowledgement and update internal state.
    fn on_ack(&mut self, fb: &AckFeedback);

    /// Process a DCQCN Congestion Notification Packet. Protocols that do
    /// not use CNPs ignore it.
    fn on_cnp(&mut self, _now: Nanos) {}

    /// Notify the algorithm that `bytes` were handed to the NIC. DCQCN's
    /// byte-counter rate-increase machinery hangs off this.
    fn on_send(&mut self, _now: Nanos, _bytes: Bytes) {}

    /// The next time the algorithm needs a timer callback, if any.
    /// The host schedules `on_timer` at (or after) this instant.
    fn next_timer(&self) -> Option<Nanos> {
        None
    }

    /// Timer callback (see [`next_timer`](Self::next_timer)).
    fn on_timer(&mut self, _now: Nanos) {}

    /// A retransmission timeout fired for this flow: the network saw no
    /// ACK progress for a full (backed-off) RTO and is rewinding to
    /// go-back-N. Protocols should treat this as a severe congestion
    /// signal (at least a multiplicative decrease). Default: nothing,
    /// for protocol-neutral fixtures.
    fn on_rto(&mut self, _now: Nanos) {}

    /// The current transmission limits for this flow.
    fn limits(&self) -> SenderLimits;

    /// Window- or rate-based classification.
    fn mode(&self) -> CcMode;

    /// Short human-readable name ("HPCC", "Swift VAI SF", ...) used in
    /// figure legends.
    fn name(&self) -> &str;

    /// The instantaneous fair-share-relevant sending rate in bits/s,
    /// used by the fairness monitor. For window protocols this is
    /// `window / base_rtt`; for rate protocols the current rate.
    fn current_rate(&self) -> BitRate {
        self.limits().pacing
    }

    /// The state recorded in `cc_update` trace events. The default
    /// derives window and rate from [`limits`](Self::limits) and reports
    /// no VAI bank; VAI-capable protocols override to expose the token
    /// balance.
    fn snapshot(&self) -> CcSnapshot {
        let l = self.limits();
        CcSnapshot {
            window_bytes: l.window_bytes,
            rate: l.pacing,
            vai_bank: 0.0,
        }
    }

    /// Publish end-of-run counters/histograms into the metrics registry
    /// under keys prefixed with this protocol's state (called once per
    /// flow when counters-level tracing is on). Default: nothing.
    fn publish_metrics(&self, _reg: &mut simtrace::MetricsRegistry) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_limits_compute_pacing() {
        // 100 KB window over a 10 us RTT = 80 Gbps.
        let l = SenderLimits::windowed(100_000.0, Nanos::from_micros(10));
        assert_eq!(l.pacing, BitRate::from_gbps(80));
        assert_eq!(l.window_bytes, 100_000.0);
    }

    #[test]
    fn windowed_with_zero_rtt_is_unthrottled() {
        let l = SenderLimits::windowed(1000.0, Nanos::ZERO);
        assert_eq!(l.pacing, BitRate(u64::MAX));
    }

    #[test]
    fn rate_based_has_infinite_window() {
        let l = SenderLimits::rate_based(BitRate::from_gbps(25));
        assert!(l.window_bytes.is_infinite());
        assert_eq!(l.pacing, BitRate::from_gbps(25));
    }

    /// A trivial impl to pin down trait-object safety and defaults.
    struct Fixed;
    impl CongestionControl for Fixed {
        fn on_ack(&mut self, _fb: &AckFeedback) {}
        fn limits(&self) -> SenderLimits {
            SenderLimits::rate_based(BitRate::from_gbps(1))
        }
        fn mode(&self) -> CcMode {
            CcMode::Rate
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    #[test]
    fn trait_defaults_are_noops() {
        let mut cc: Box<dyn CongestionControl> = Box::new(Fixed);
        cc.on_cnp(Nanos(1));
        cc.on_send(Nanos(1), Bytes(10));
        cc.on_timer(Nanos(2));
        cc.on_rto(Nanos(3));
        assert_eq!(cc.next_timer(), None);
        assert_eq!(cc.current_rate(), BitRate::from_gbps(1));
        assert_eq!(cc.name(), "fixed");
    }
}
