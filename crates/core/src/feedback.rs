//! Network feedback records delivered to congestion-control algorithms.
//!
//! The three state-of-the-art signal families the paper discusses are all
//! representable here:
//!
//! * **INT** (HPCC): per-hop telemetry stamped by switches on egress —
//!   queue length, cumulative transmitted bytes, a timestamp, and the link
//!   bandwidth ([`IntHop`], [`IntStack`]).
//! * **RTT** (Swift/Timely): the ACK echoes the data packet's send
//!   timestamp; the simulator computes the round-trip delay.
//! * **ECN** (DCQCN): a RED-marked congestion-experienced bit echoed by the
//!   receiver (and separately, CNPs — see `CongestionControl::on_cnp`).

use dcsim::{BitRate, Bytes, Nanos};

/// Maximum number of hops recorded in an INT stack.
///
/// The paper's fat-tree has at most 5 switch hops between two hosts; we add
/// headroom for the sender-NIC pseudo-hop and future topologies.
pub const MAX_INT_HOPS: usize = 8;

/// Telemetry recorded by one egress port as the packet left it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IntHop {
    /// Bytes queued at the egress port at the moment this packet started
    /// transmission (the packet itself excluded).
    pub qlen: Bytes,
    /// Cumulative bytes ever transmitted by this port, *including* this
    /// packet. HPCC differentiates successive values to estimate link
    /// utilization.
    pub tx_bytes: u64,
    /// Switch-local timestamp when the packet started transmission.
    pub ts: Nanos,
    /// The egress link's line rate.
    pub rate: BitRate,
}

/// The per-packet stack of [`IntHop`] records, in path order.
///
/// Fixed-capacity and inline (no allocation): packets are the hottest object
/// in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IntStack {
    hops: [IntHop; MAX_INT_HOPS],
    len: u8,
}

impl IntStack {
    /// An empty stack.
    pub const fn new() -> Self {
        IntStack {
            hops: [IntHop {
                qlen: Bytes::ZERO,
                tx_bytes: 0,
                ts: Nanos::ZERO,
                rate: BitRate::ZERO,
            }; MAX_INT_HOPS],
            len: 0,
        }
    }

    /// Append one hop record. Silently drops records past [`MAX_INT_HOPS`]
    /// (mirrors the bounded INT header space of real P4 switches).
    #[inline]
    pub fn push(&mut self, hop: IntHop) {
        if (self.len as usize) < MAX_INT_HOPS {
            self.hops[self.len as usize] = hop;
            self.len += 1;
        }
    }

    /// Number of recorded hops.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no hops are recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The recorded hops, in path order.
    #[inline]
    pub fn hops(&self) -> &[IntHop] {
        &self.hops[..self.len as usize]
    }

    /// Remove all hops (when a packet buffer is recycled).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The maximum queue length across all hops — the paper's "Measured
    /// Congestion" for HPCC-style VAI token generation.
    #[inline]
    pub fn max_qlen(&self) -> Bytes {
        self.hops()
            .iter()
            .map(|h| h.qlen)
            .max()
            .unwrap_or(Bytes::ZERO)
    }
}

/// Everything a congestion-control algorithm learns from one ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckFeedback {
    /// Arrival time of the ACK at the sender.
    pub now: Nanos,
    /// Measured round-trip time (ACK arrival minus the echoed send
    /// timestamp of the data packet it acknowledges).
    pub rtt: Nanos,
    /// Whether the acknowledged data packet was ECN-marked.
    pub ecn: bool,
    /// INT telemetry collected by the acknowledged data packet.
    pub int: IntStack,
    /// Payload bytes newly acknowledged by this ACK.
    pub acked: Bytes,
    /// Number of switch hops the data packet traversed (for Swift's
    /// topology-based scaling).
    pub hops: u8,
}

impl AckFeedback {
    /// A minimal feedback record for tests: `rtt` only, no INT, no ECN.
    pub fn rtt_only(now: Nanos, rtt: Nanos, acked: Bytes) -> Self {
        AckFeedback {
            now,
            rtt,
            ecn: false,
            int: IntStack::new(),
            acked,
            hops: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(qlen: u64) -> IntHop {
        IntHop {
            qlen: Bytes(qlen),
            tx_bytes: 0,
            ts: Nanos(0),
            rate: BitRate::from_gbps(100),
        }
    }

    #[test]
    fn stack_push_and_read() {
        let mut s = IntStack::new();
        assert!(s.is_empty());
        s.push(hop(10));
        s.push(hop(30));
        s.push(hop(20));
        assert_eq!(s.len(), 3);
        assert_eq!(s.hops()[1].qlen, Bytes(30));
        assert_eq!(s.max_qlen(), Bytes(30));
    }

    #[test]
    fn stack_saturates_at_capacity() {
        let mut s = IntStack::new();
        for i in 0..(MAX_INT_HOPS as u64 + 5) {
            s.push(hop(i));
        }
        assert_eq!(s.len(), MAX_INT_HOPS);
        // The overflow hops were dropped, so the max is the last kept one.
        assert_eq!(s.max_qlen(), Bytes(MAX_INT_HOPS as u64 - 1));
    }

    #[test]
    fn clear_resets() {
        let mut s = IntStack::new();
        s.push(hop(5));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.max_qlen(), Bytes(0));
    }

    #[test]
    fn empty_stack_max_qlen_is_zero() {
        assert_eq!(IntStack::new().max_qlen(), Bytes(0));
    }
}
