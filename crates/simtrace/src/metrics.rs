//! Metrics registry: ordered counters and log-scale histograms.
//!
//! Subsystems publish into a [`MetricsRegistry`] at the end of a run
//! (`Port::publish_metrics`, `Network::publish_metrics`, the CC trait's
//! `publish_metrics`). Keys are dotted paths like `"port.0.1.tx_bytes"`
//! — integers only, never floats, so keys sort and serialize
//! byte-stably. Storage is `BTreeMap` to keep iteration deterministic.

use std::collections::BTreeMap;

use minijson::{obj, Value};

/// A fixed-bucket base-2 log-scale histogram of `u64` samples.
///
/// Bucket `b` holds samples whose bit length is `b` (i.e. values in
/// `[2^(b-1), 2^b)`; bucket 0 holds exactly the value 0). 65 buckets
/// cover the whole `u64` range with no configuration and no floats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Occupied buckets as `(lower_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| {
                let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
                (lo, n)
            })
            .collect()
    }

    /// JSON form: scalar stats plus `[lower_bound, count]` bucket pairs.
    pub fn to_value(&self) -> Value {
        obj([
            ("count", Value::from(self.count)),
            ("sum", Value::from(self.sum)),
            ("min", Value::from(self.min())),
            ("max", Value::from(self.max())),
            (
                "buckets",
                Value::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, n)| Value::Arr(vec![Value::from(lo), Value::from(n)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Ordered counters and histograms published by subsystems.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `delta` to the counter `key` (creating it at zero).
    pub fn counter_add(&mut self, key: &str, delta: u64) {
        let c = self.counters.entry(key.to_owned()).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Set the counter `key` to `value` (last write wins).
    pub fn counter_set(&mut self, key: &str, value: u64) {
        self.counters.insert(key.to_owned(), value);
    }

    /// Current value of a counter, if present.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// Record one sample into the histogram `key`.
    pub fn histogram_record(&mut self, key: &str, value: u64) {
        self.histograms
            .entry(key.to_owned())
            .or_default()
            .record(value);
    }

    /// Record a non-negative float sample, truncated to integer.
    ///
    /// The only lossy float→int conversion in the crate: histogram
    /// buckets are base-2 decades, so sub-integer precision is noise.
    pub fn histogram_record_f64(&mut self, key: &str, value: f64) {
        // simlint: allow(D4) — log-scale bucketing; sub-integer precision is immaterial
        self.histogram_record(key, value.max(0.0) as u64);
    }

    /// The histogram at `key`, if present.
    pub fn histogram(&self, key: &str) -> Option<&LogHistogram> {
        self.histograms.get(key)
    }

    /// Whether nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one (counters add, histograms
    /// would collide — callers namespace keys per run).
    pub fn absorb(&mut self, other: MetricsRegistry) {
        for (k, v) in other.counters {
            let c = self.counters.entry(k).or_insert(0);
            *c = c.saturating_add(v);
        }
        for (k, h) in other.histograms {
            self.histograms.insert(k, h);
        }
    }

    /// JSON form: `{"counters": {…}, "histograms": {…}}`, key-sorted.
    pub fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Value::from(v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_value()))
            .collect();
        obj([
            ("counters", Value::Obj(counters)),
            ("histograms", Value::Obj(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        let buckets = h.nonzero_buckets();
        // 0 → bucket lo 0; 1 → lo 1; 2,3 → lo 2; 4 → lo 4; 1024 → lo 1024.
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (1, 1));
        assert_eq!(buckets[2], (2, 2));
        assert_eq!(buckets[3], (4, 1));
        assert_eq!(buckets[4], (1024, 1));
        assert_eq!(buckets[5], (1u64 << 63, 1));
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = LogHistogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.to_value()["min"], minijson::Value::Null);
    }

    #[test]
    fn registry_counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.counter_add("port.tx_bytes", 100);
        r.counter_add("port.tx_bytes", 50);
        r.counter_set("engine.events", 7);
        assert_eq!(r.counter("port.tx_bytes"), Some(150));
        assert_eq!(r.counter("engine.events"), Some(7));
        assert_eq!(r.counter("missing"), None);
    }

    #[test]
    fn f64_samples_truncate_and_clamp() {
        let mut r = MetricsRegistry::new();
        r.histogram_record_f64("h", 1000.9);
        r.histogram_record_f64("h", -5.0);
        let h = r.histogram("h").expect("histogram created");
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
    }

    #[test]
    fn json_is_key_sorted_and_parseable() {
        let mut r = MetricsRegistry::new();
        r.counter_add("z.last", 1);
        r.counter_add("a.first", 2);
        r.histogram_record("fct_ns", 5_000);
        let text = r.to_value().pretty();
        let v = Value::parse(&text).expect("registry emits valid JSON");
        let keys: Vec<&str> = v["counters"]
            .as_object()
            .expect("counters object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["a.first", "z.last"]);
        assert_eq!(v["histograms"]["fct_ns"]["count"].as_u64(), Some(1));
    }

    #[test]
    fn absorb_merges_counters() {
        let mut a = MetricsRegistry::new();
        a.counter_add("n", 1);
        let mut b = MetricsRegistry::new();
        b.counter_add("n", 2);
        b.histogram_record("h", 9);
        a.absorb(b);
        assert_eq!(a.counter("n"), Some(3));
        assert!(a.histogram("h").is_some());
    }
}
