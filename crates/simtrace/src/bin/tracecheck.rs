//! Validate simtrace JSONL files: schema shape and time ordering.
//!
//! Usage: `tracecheck <file.jsonl | directory>...`
//!
//! For each argument, validates the file (or every `*.jsonl` file in the
//! directory, recursively one level) against the simtrace event schema:
//! every line is a JSON object with a non-decreasing integer `t`, a known
//! `sub`/`ev` pair, and the payload fields that event requires.
//!
//! Exit codes: 0 all valid, 1 validation failure, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use minijson::Value;

/// One validation problem, with enough context to locate it.
struct Problem {
    file: PathBuf,
    line: usize,
    what: String,
}

impl std::fmt::Display for Problem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.what)
    }
}

/// The integer payload fields required by each event name.
fn required_u64_fields(ev: &str) -> Option<&'static [&'static str]> {
    match ev {
        "enqueue" | "dequeue" => Some(&["node", "port", "flow", "bytes", "qbytes"]),
        "drop" => Some(&["node", "port", "flow", "bytes"]),
        "ecn_mark" => Some(&["node", "port", "flow", "qbytes"]),
        "pfc" => Some(&["node", "port"]),
        "flow_start" => Some(&["flow", "bytes"]),
        "flow_finish" => Some(&["flow", "bytes", "fct_ns"]),
        "cc_update" => Some(&["flow", "rate_bps"]),
        "link_down" => Some(&["node", "port", "flushed"]),
        "link_up" => Some(&["node", "port"]),
        "loss_burst" => Some(&["node", "port", "flow", "bytes"]),
        "rto_backoff" => Some(&["flow", "level", "timeout_ns"]),
        "reroute" => Some(&["node", "port"]),
        _ => None,
    }
}

/// The subsystem each event name must be tagged with.
fn expected_sub(ev: &str) -> &'static str {
    match ev {
        "enqueue" | "dequeue" | "drop" | "ecn_mark" => "port",
        "pfc" => "pfc",
        "flow_start" | "flow_finish" => "flow",
        "cc_update" => "cc",
        "link_down" | "link_up" | "loss_burst" | "rto_backoff" | "reroute" => "fault",
        _ => "?",
    }
}

/// Validate one JSONL document; push problems found.
fn check_file(path: &Path, text: &str, problems: &mut Vec<Problem>) {
    let mut last_t: u64 = 0;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let mut fail = |what: String| {
            problems.push(Problem {
                file: path.to_path_buf(),
                line: lineno,
                what,
            });
        };
        if line.trim().is_empty() {
            fail("blank line in JSONL stream".to_owned());
            continue;
        }
        let v = match Value::parse(line) {
            Ok(v) => v,
            Err(e) => {
                fail(format!("not valid JSON: {e}"));
                continue;
            }
        };
        if v.as_object().is_none() {
            fail("line is not a JSON object".to_owned());
            continue;
        }
        let Some(t) = v["t"].as_u64() else {
            fail("missing or non-integer 't'".to_owned());
            continue;
        };
        if t < last_t {
            fail(format!("time went backwards: {t} after {last_t}"));
        }
        last_t = t;
        let Some(ev) = v["ev"].as_str() else {
            fail("missing 'ev'".to_owned());
            continue;
        };
        let ev = ev.to_owned();
        let Some(required) = required_u64_fields(&ev) else {
            fail(format!("unknown event '{ev}'"));
            continue;
        };
        match v["sub"].as_str() {
            Some(sub) if sub == expected_sub(&ev) => {}
            Some(sub) => fail(format!(
                "event '{ev}' tagged sub '{sub}', expected '{}'",
                expected_sub(&ev)
            )),
            None => fail("missing 'sub'".to_owned()),
        }
        for &key in required {
            if v[key].as_u64().is_none() {
                fail(format!("event '{ev}' missing integer field '{key}'"));
            }
        }
        if ev == "pfc" && v["paused"].as_bool().is_none() {
            fail("event 'pfc' missing boolean field 'paused'".to_owned());
        }
        if ev == "loss_burst" && v["bursty"].as_bool().is_none() {
            fail("event 'loss_burst' missing boolean field 'bursty'".to_owned());
        }
        if ev == "reroute" && v["up"].as_bool().is_none() {
            fail("event 'reroute' missing boolean field 'up'".to_owned());
        }
        if ev == "cc_update" {
            for key in ["window_bytes", "vai_bank"] {
                if v[key].as_f64().is_none() {
                    fail(format!("event 'cc_update' missing numeric field '{key}'"));
                }
            }
        }
    }
}

/// Expand an argument into the JSONL files it names.
fn collect(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_dir() {
        let entries = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read directory {}: {e}", path.display()))?;
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file() && p.extension().and_then(|x| x.to_str()) == Some("jsonl"))
            .collect();
        files.sort();
        Ok(files)
    } else if path.is_file() {
        Ok(vec![path.to_path_buf()])
    } else {
        Err(format!("no such file or directory: {}", path.display()))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: tracecheck <file.jsonl | directory>...");
        return ExitCode::from(2);
    }
    let mut files = Vec::new();
    for a in &args {
        match collect(Path::new(a)) {
            Ok(mut fs) => files.append(&mut fs),
            Err(e) => {
                eprintln!("tracecheck: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if files.is_empty() {
        eprintln!("tracecheck: no .jsonl files found");
        return ExitCode::from(2);
    }
    let mut problems = Vec::new();
    let mut total_lines = 0usize;
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(text) => {
                total_lines += text.lines().count();
                check_file(f, &text, &mut problems);
            }
            Err(e) => {
                eprintln!("tracecheck: cannot read {}: {e}", f.display());
                return ExitCode::from(2);
            }
        }
    }
    if problems.is_empty() {
        println!(
            "tracecheck: OK — {} event(s) across {} file(s)",
            total_lines,
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("{p}");
        }
        eprintln!("tracecheck: {} problem(s)", problems.len());
        ExitCode::from(1)
    }
}
