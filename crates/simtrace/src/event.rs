//! Typed trace events and their JSONL / Chrome `trace_event` encodings.

use dcsim::Nanos;
use minijson::{obj, Value};

use crate::config::Subsystem;

/// One structured trace event.
///
/// Integer identifiers (`node`, `port`, `flow`) are the raw values of the
/// simulator's id newtypes; byte counts are exact. Float payloads
/// (`window_bytes`, `vai_bank`) carry congestion-control state that is
/// natively `f64` — they are seed-deterministic bit patterns, so their
/// text encoding is byte-stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A packet entered a port's egress queue.
    PortEnqueue {
        /// Switch or host node id.
        node: u32,
        /// Egress port number on that node.
        port: u16,
        /// Owning flow id.
        flow: u32,
        /// Wire size of the packet, bytes.
        bytes: u32,
        /// Queue backlog after the enqueue, bytes.
        qbytes: u64,
    },
    /// A packet left a port's queue and started serializing.
    PortDequeue {
        /// Switch or host node id.
        node: u32,
        /// Egress port number on that node.
        port: u16,
        /// Owning flow id.
        flow: u32,
        /// Wire size of the packet, bytes.
        bytes: u32,
        /// Queue backlog after the dequeue, bytes.
        qbytes: u64,
    },
    /// A packet was dropped at a full port buffer.
    PortDrop {
        /// Switch or host node id.
        node: u32,
        /// Egress port number on that node.
        port: u16,
        /// Owning flow id.
        flow: u32,
        /// Wire size of the dropped packet, bytes.
        bytes: u32,
    },
    /// A packet was ECN-marked (threshold or RED) on enqueue.
    EcnMark {
        /// Switch or host node id.
        node: u32,
        /// Egress port number on that node.
        port: u16,
        /// Owning flow id.
        flow: u32,
        /// Queue backlog at the marking instant, bytes.
        qbytes: u64,
    },
    /// A PFC pause state change arrived at an upstream port.
    PfcPause {
        /// Node owning the paused/resumed port.
        node: u32,
        /// The port number.
        port: u16,
        /// `true` for XOFF (pause), `false` for XON (resume).
        paused: bool,
    },
    /// A flow's first transmission opportunity.
    FlowStart {
        /// Flow id.
        flow: u32,
        /// Flow size, payload bytes.
        bytes: u64,
    },
    /// A flow's final acknowledgement reached the sender.
    FlowFinish {
        /// Flow id.
        flow: u32,
        /// Flow size, payload bytes.
        bytes: u64,
        /// Flow completion time, nanoseconds.
        fct_ns: u64,
    },
    /// A congestion-control state sample (taken on ACK processing).
    CcUpdate {
        /// Flow id.
        flow: u32,
        /// Effective window, bytes (from `SenderLimits`).
        window_bytes: f64,
        /// Pacing rate, bits/s.
        rate_bps: u64,
        /// VAI token-bank balance (0 for variants without VAI).
        vai_bank: f64,
    },
    /// A link direction went down (fault injection), flushing its queue.
    LinkDown {
        /// Node owning the downed egress port.
        node: u32,
        /// The port number.
        port: u16,
        /// Queued frames flushed (dropped) by the outage.
        flushed: u32,
    },
    /// A link direction came back up (fault injection).
    LinkUp {
        /// Node owning the restored egress port.
        node: u32,
        /// The port number.
        port: u16,
    },
    /// A frame was destroyed on the wire by the loss model.
    LossBurst {
        /// Node owning the lossy egress port.
        node: u32,
        /// The port number.
        port: u16,
        /// Owning flow id.
        flow: u32,
        /// Wire size of the lost frame, bytes.
        bytes: u32,
        /// Whether the Gilbert–Elliott channel was in its bad state
        /// (`false` for uniform loss).
        bursty: bool,
    },
    /// A retransmission timeout fired and the sender backed off.
    RtoBackoff {
        /// Flow id.
        flow: u32,
        /// Backoff level after this firing (1 = first timeout).
        level: u32,
        /// The next armed timeout, nanoseconds.
        timeout_ns: u64,
    },
    /// Routing was recomputed after a link state change.
    Reroute {
        /// Node whose link changed and triggered the recompute.
        node: u32,
        /// The port number that changed state.
        port: u16,
        /// `true` if the trigger was the link coming up.
        up: bool,
    },
}

impl TraceEvent {
    /// The subsystem this event belongs to (drives filtering).
    pub fn subsystem(&self) -> Subsystem {
        match self {
            TraceEvent::PortEnqueue { .. }
            | TraceEvent::PortDequeue { .. }
            | TraceEvent::PortDrop { .. }
            | TraceEvent::EcnMark { .. } => Subsystem::Port,
            TraceEvent::PfcPause { .. } => Subsystem::Pfc,
            TraceEvent::FlowStart { .. } | TraceEvent::FlowFinish { .. } => Subsystem::Flow,
            TraceEvent::CcUpdate { .. } => Subsystem::Cc,
            TraceEvent::LinkDown { .. }
            | TraceEvent::LinkUp { .. }
            | TraceEvent::LossBurst { .. }
            | TraceEvent::RtoBackoff { .. }
            | TraceEvent::Reroute { .. } => Subsystem::Fault,
        }
    }

    /// Stable event name (JSONL `ev` field, Chrome `name`).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::PortEnqueue { .. } => "enqueue",
            TraceEvent::PortDequeue { .. } => "dequeue",
            TraceEvent::PortDrop { .. } => "drop",
            TraceEvent::EcnMark { .. } => "ecn_mark",
            TraceEvent::PfcPause { .. } => "pfc",
            TraceEvent::FlowStart { .. } => "flow_start",
            TraceEvent::FlowFinish { .. } => "flow_finish",
            TraceEvent::CcUpdate { .. } => "cc_update",
            TraceEvent::LinkDown { .. } => "link_down",
            TraceEvent::LinkUp { .. } => "link_up",
            TraceEvent::LossBurst { .. } => "loss_burst",
            TraceEvent::RtoBackoff { .. } => "rto_backoff",
            TraceEvent::Reroute { .. } => "reroute",
        }
    }

    /// The payload fields, in fixed order, without the envelope.
    fn payload(&self) -> Vec<(&'static str, Value)> {
        match *self {
            TraceEvent::PortEnqueue {
                node,
                port,
                flow,
                bytes,
                qbytes,
            }
            | TraceEvent::PortDequeue {
                node,
                port,
                flow,
                bytes,
                qbytes,
            } => vec![
                ("node", Value::from(node)),
                ("port", Value::from(u32::from(port))),
                ("flow", Value::from(flow)),
                ("bytes", Value::from(bytes)),
                ("qbytes", Value::from(qbytes)),
            ],
            TraceEvent::PortDrop {
                node,
                port,
                flow,
                bytes,
            } => vec![
                ("node", Value::from(node)),
                ("port", Value::from(u32::from(port))),
                ("flow", Value::from(flow)),
                ("bytes", Value::from(bytes)),
            ],
            TraceEvent::EcnMark {
                node,
                port,
                flow,
                qbytes,
            } => vec![
                ("node", Value::from(node)),
                ("port", Value::from(u32::from(port))),
                ("flow", Value::from(flow)),
                ("qbytes", Value::from(qbytes)),
            ],
            TraceEvent::PfcPause { node, port, paused } => vec![
                ("node", Value::from(node)),
                ("port", Value::from(u32::from(port))),
                ("paused", Value::from(paused)),
            ],
            TraceEvent::FlowStart { flow, bytes } => {
                vec![("flow", Value::from(flow)), ("bytes", Value::from(bytes))]
            }
            TraceEvent::FlowFinish {
                flow,
                bytes,
                fct_ns,
            } => vec![
                ("flow", Value::from(flow)),
                ("bytes", Value::from(bytes)),
                ("fct_ns", Value::from(fct_ns)),
            ],
            TraceEvent::CcUpdate {
                flow,
                window_bytes,
                rate_bps,
                vai_bank,
            } => vec![
                ("flow", Value::from(flow)),
                ("window_bytes", Value::from(window_bytes)),
                ("rate_bps", Value::from(rate_bps)),
                ("vai_bank", Value::from(vai_bank)),
            ],
            TraceEvent::LinkDown {
                node,
                port,
                flushed,
            } => vec![
                ("node", Value::from(node)),
                ("port", Value::from(u32::from(port))),
                ("flushed", Value::from(flushed)),
            ],
            TraceEvent::LinkUp { node, port } => vec![
                ("node", Value::from(node)),
                ("port", Value::from(u32::from(port))),
            ],
            TraceEvent::LossBurst {
                node,
                port,
                flow,
                bytes,
                bursty,
            } => vec![
                ("node", Value::from(node)),
                ("port", Value::from(u32::from(port))),
                ("flow", Value::from(flow)),
                ("bytes", Value::from(bytes)),
                ("bursty", Value::from(bursty)),
            ],
            TraceEvent::RtoBackoff {
                flow,
                level,
                timeout_ns,
            } => vec![
                ("flow", Value::from(flow)),
                ("level", Value::from(level)),
                ("timeout_ns", Value::from(timeout_ns)),
            ],
            TraceEvent::Reroute { node, port, up } => vec![
                ("node", Value::from(node)),
                ("port", Value::from(u32::from(port))),
                ("up", Value::from(up)),
            ],
        }
    }

    /// One JSONL record: `{"t":…,"sub":…,"ev":…,<payload>}`.
    pub fn to_value(&self, t: Nanos) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("t".to_owned(), Value::from(t.as_u64())),
            ("sub".to_owned(), Value::from(self.subsystem().name())),
            ("ev".to_owned(), Value::from(self.name())),
        ];
        for (k, v) in self.payload() {
            fields.push((k.to_owned(), v));
        }
        Value::Obj(fields)
    }

    /// The Chrome `trace_event` record for this event.
    ///
    /// Flow completions become complete spans (`ph: "X"`, `dur` = FCT);
    /// everything else is a global instant (`ph: "i"`). Timestamps are
    /// microseconds, as the format requires.
    pub fn chrome_value(&self, t: Nanos) -> Value {
        let ts_us = t.as_micros_f64();
        let track = match *self {
            TraceEvent::PortEnqueue { node, .. }
            | TraceEvent::PortDequeue { node, .. }
            | TraceEvent::PortDrop { node, .. }
            | TraceEvent::EcnMark { node, .. }
            | TraceEvent::PfcPause { node, .. }
            | TraceEvent::LinkDown { node, .. }
            | TraceEvent::LinkUp { node, .. }
            | TraceEvent::LossBurst { node, .. }
            | TraceEvent::Reroute { node, .. } => node,
            TraceEvent::FlowStart { flow, .. }
            | TraceEvent::FlowFinish { flow, .. }
            | TraceEvent::CcUpdate { flow, .. }
            | TraceEvent::RtoBackoff { flow, .. } => flow,
        };
        if let TraceEvent::FlowFinish { fct_ns, .. } = *self {
            let dur_us = Nanos::from_ns(fct_ns).as_micros_f64();
            return obj([
                ("name", Value::from(self.name())),
                ("cat", Value::from(self.subsystem().name())),
                ("ph", Value::from("X")),
                ("ts", Value::from(ts_us - dur_us)),
                ("dur", Value::from(dur_us)),
                ("pid", Value::from(1u32)),
                ("tid", Value::from(track)),
                ("args", Value::Obj(to_args(self.payload()))),
            ]);
        }
        obj([
            ("name", Value::from(self.name())),
            ("cat", Value::from(self.subsystem().name())),
            ("ph", Value::from("i")),
            ("ts", Value::from(ts_us)),
            ("s", Value::from("g")),
            ("pid", Value::from(1u32)),
            ("tid", Value::from(track)),
            ("args", Value::Obj(to_args(self.payload()))),
        ])
    }
}

fn to_args(pairs: Vec<(&'static str, Value)>) -> Vec<(String, Value)> {
    pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystems_and_names_are_stable() {
        let ev = TraceEvent::PortDrop {
            node: 3,
            port: 1,
            flow: 7,
            bytes: 1064,
        };
        assert_eq!(ev.subsystem(), Subsystem::Port);
        assert_eq!(ev.name(), "drop");
        let v = ev.to_value(Nanos(250));
        assert_eq!(v["t"].as_u64(), Some(250));
        assert_eq!(v["sub"].as_str(), Some("port"));
        assert_eq!(v["ev"].as_str(), Some("drop"));
        assert_eq!(v["bytes"].as_u64(), Some(1064));
    }

    #[test]
    fn flow_finish_is_a_complete_span() {
        let ev = TraceEvent::FlowFinish {
            flow: 2,
            bytes: 1_000_000,
            fct_ns: 4_000,
        };
        let v = ev.chrome_value(Nanos(10_000));
        assert_eq!(v["ph"].as_str(), Some("X"));
        assert_eq!(v["ts"].as_f64(), Some(6.0));
        assert_eq!(v["dur"].as_f64(), Some(4.0));
        assert_eq!(v["tid"].as_u64(), Some(2));
    }

    #[test]
    fn fault_events_belong_to_the_fault_subsystem() {
        let evs = [
            TraceEvent::LinkDown {
                node: 4,
                port: 2,
                flushed: 3,
            },
            TraceEvent::LinkUp { node: 4, port: 2 },
            TraceEvent::LossBurst {
                node: 4,
                port: 2,
                flow: 9,
                bytes: 1064,
                bursty: true,
            },
            TraceEvent::RtoBackoff {
                flow: 9,
                level: 2,
                timeout_ns: 400_000,
            },
            TraceEvent::Reroute {
                node: 4,
                port: 2,
                up: false,
            },
        ];
        let names = [
            "link_down",
            "link_up",
            "loss_burst",
            "rto_backoff",
            "reroute",
        ];
        for (ev, name) in evs.iter().zip(names) {
            assert_eq!(ev.subsystem(), Subsystem::Fault);
            assert_eq!(ev.name(), name);
            let v = ev.to_value(Nanos(100));
            assert_eq!(v["sub"].as_str(), Some("fault"));
            assert_eq!(v["ev"].as_str(), Some(name));
            let c = ev.chrome_value(Nanos(100));
            assert_eq!(c["ph"].as_str(), Some("i"));
            assert_eq!(c["cat"].as_str(), Some("fault"));
        }
        let v = evs[3].to_value(Nanos(1));
        assert_eq!(v["level"].as_u64(), Some(2));
        assert_eq!(v["timeout_ns"].as_u64(), Some(400_000));
        // RtoBackoff is flow-keyed; link events are node-keyed.
        assert_eq!(evs[3].chrome_value(Nanos(1))["tid"].as_u64(), Some(9));
        assert_eq!(evs[0].chrome_value(Nanos(1))["tid"].as_u64(), Some(4));
    }

    #[test]
    fn instants_carry_scope_and_args() {
        let ev = TraceEvent::EcnMark {
            node: 1,
            port: 0,
            flow: 5,
            qbytes: 90_000,
        };
        let v = ev.chrome_value(Nanos(1_500));
        assert_eq!(v["ph"].as_str(), Some("i"));
        assert_eq!(v["s"].as_str(), Some("g"));
        assert_eq!(v["cat"].as_str(), Some("port"));
        assert_eq!(v["args"]["qbytes"].as_u64(), Some(90_000));
    }
}
