//! Runtime trace configuration: level, subsystem filter, CC sampling.

use std::fmt;
use std::str::FromStr;

/// How much to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing (one branch per instrumentation site).
    #[default]
    Off,
    /// End-of-run counters and histograms only; no event buffer.
    Counters,
    /// Counters plus the full structured event stream.
    Full,
}

/// An instrumented subsystem, used to filter the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Subsystem {
    /// dcsim engine profiling (occupancy, dispatch).
    Engine,
    /// Switch egress ports: enqueue/dequeue/drop/ECN-mark.
    Port,
    /// Flow lifecycle: start/finish.
    Flow,
    /// Congestion-control state samples: cwnd/rate/VAI tokens.
    Cc,
    /// Priority flow control pause edges.
    Pfc,
    /// Fault injection: link up/down, loss bursts, RTO backoff, reroutes.
    Fault,
}

impl Subsystem {
    /// Every subsystem, in mask-bit order.
    pub const ALL: [Subsystem; 6] = [
        Subsystem::Engine,
        Subsystem::Port,
        Subsystem::Flow,
        Subsystem::Cc,
        Subsystem::Pfc,
        Subsystem::Fault,
    ];

    /// Stable lowercase name (CLI `--trace-filter` values, JSONL `sub`
    /// field).
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Engine => "engine",
            Subsystem::Port => "port",
            Subsystem::Flow => "flow",
            Subsystem::Cc => "cc",
            Subsystem::Pfc => "pfc",
            Subsystem::Fault => "fault",
        }
    }

    fn bit(self) -> u8 {
        match self {
            Subsystem::Engine => 1 << 0,
            Subsystem::Port => 1 << 1,
            Subsystem::Flow => 1 << 2,
            Subsystem::Cc => 1 << 3,
            Subsystem::Pfc => 1 << 4,
            Subsystem::Fault => 1 << 5,
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Subsystem {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Subsystem::ALL
            .into_iter()
            .find(|sub| sub.name() == s)
            .ok_or_else(|| {
                let known: Vec<&str> = Subsystem::ALL.into_iter().map(Subsystem::name).collect();
                format!(
                    "unknown subsystem '{s}' (expected one of {})",
                    known.join(", ")
                )
            })
    }
}

/// A set of [`Subsystem`]s, as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubsystemMask(u8);

impl SubsystemMask {
    /// Every subsystem enabled.
    pub fn all() -> Self {
        Subsystem::ALL
            .into_iter()
            .fold(SubsystemMask::none(), SubsystemMask::with)
    }

    /// No subsystem enabled.
    pub fn none() -> Self {
        SubsystemMask(0)
    }

    /// This mask plus `sub`.
    pub fn with(self, sub: Subsystem) -> Self {
        SubsystemMask(self.0 | sub.bit())
    }

    /// Whether `sub` is in the mask.
    #[inline]
    pub fn contains(self, sub: Subsystem) -> bool {
        self.0 & sub.bit() != 0
    }

    /// Whether the mask is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl Default for SubsystemMask {
    fn default() -> Self {
        SubsystemMask::all()
    }
}

/// Runtime gate for the tracer: what to record and how often.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Recording level.
    pub level: TraceLevel,
    /// Which subsystems contribute to the event stream (ignored below
    /// [`TraceLevel::Full`]).
    pub subsystems: SubsystemMask,
    /// Record one CC state sample every this many ACKs per flow
    /// (1 = every ACK). Must be non-zero.
    pub cc_sample_every: u32,
}

impl TraceConfig {
    /// Record nothing.
    pub fn off() -> Self {
        TraceConfig {
            level: TraceLevel::Off,
            subsystems: SubsystemMask::all(),
            cc_sample_every: 1,
        }
    }

    /// Counters and histograms only.
    pub fn counters() -> Self {
        TraceConfig {
            level: TraceLevel::Counters,
            ..TraceConfig::off()
        }
    }

    /// Full event stream from every subsystem.
    pub fn full() -> Self {
        TraceConfig {
            level: TraceLevel::Full,
            ..TraceConfig::off()
        }
    }

    /// Restrict the event stream to `sub` only (repeatable: each call
    /// adds to the filter, starting from an empty mask).
    pub fn with_filter(mut self, sub: Subsystem) -> Self {
        if self.subsystems == SubsystemMask::all() {
            self.subsystems = SubsystemMask::none();
        }
        self.subsystems = self.subsystems.with(sub);
        self
    }

    /// Set the CC sampling cadence (clamped to ≥ 1).
    pub fn with_cc_sample_every(mut self, every: u32) -> Self {
        self.cc_sample_every = every.max(1);
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order() {
        assert!(TraceLevel::Off < TraceLevel::Counters);
        assert!(TraceLevel::Counters < TraceLevel::Full);
        assert_eq!(TraceLevel::default(), TraceLevel::Off);
    }

    #[test]
    fn mask_round_trip() {
        let m = SubsystemMask::none()
            .with(Subsystem::Port)
            .with(Subsystem::Cc);
        assert!(m.contains(Subsystem::Port));
        assert!(m.contains(Subsystem::Cc));
        assert!(!m.contains(Subsystem::Flow));
        assert!(SubsystemMask::none().is_empty());
        for sub in Subsystem::ALL {
            assert!(SubsystemMask::all().contains(sub));
        }
    }

    #[test]
    fn subsystem_names_parse_back() {
        for sub in Subsystem::ALL {
            assert_eq!(sub.name().parse::<Subsystem>(), Ok(sub));
        }
        assert!("bogus".parse::<Subsystem>().is_err());
    }

    #[test]
    fn filter_starts_from_empty_mask() {
        let cfg = TraceConfig::full().with_filter(Subsystem::Port);
        assert!(cfg.subsystems.contains(Subsystem::Port));
        assert!(!cfg.subsystems.contains(Subsystem::Flow));
        let both = cfg.with_filter(Subsystem::Flow);
        assert!(both.subsystems.contains(Subsystem::Port));
        assert!(both.subsystems.contains(Subsystem::Flow));
    }

    #[test]
    fn cc_cadence_clamped() {
        assert_eq!(
            TraceConfig::full().with_cc_sample_every(0).cc_sample_every,
            1
        );
        assert_eq!(
            TraceConfig::full().with_cc_sample_every(8).cc_sample_every,
            8
        );
    }
}
