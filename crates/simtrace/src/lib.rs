//! Observability layer for the simulator: structured event tracing, a
//! metrics registry, and deterministic trace export.
//!
//! # Design
//!
//! Three pieces, each usable on its own:
//!
//! * [`Tracer`] — an in-memory buffer of `(time, TraceEvent)` pairs with
//!   typed payloads (port enqueue/dequeue/drop/ECN-mark, PFC pause edges,
//!   flow start/finish, congestion-control state samples). Export as
//!   deterministic JSONL ([`Tracer::to_jsonl`]) or as Chrome
//!   `trace_event` JSON loadable in Perfetto ([`Tracer::to_chrome`]).
//! * [`MetricsRegistry`] — ordered counters and fixed-bucket log-scale
//!   histograms ([`LogHistogram`]) that subsystems publish into at the
//!   end of a run. Keys are strings, values are integers or bucket
//!   arrays — no floats in keys, so serialization is byte-stable.
//! * [`TraceConfig`] — the runtime gate: off / counters-only / full,
//!   plus a [`SubsystemMask`] filter and a CC sampling cadence.
//!
//! # Overhead model
//!
//! Gating mirrors the `sim-audit` pattern. Without the `trace` cargo
//! feature, [`ENABLED`] is `false` at compile time, every
//! [`Tracer::wants`] check const-folds away, and the recording paths are
//! dead code. With the feature compiled in but [`TraceLevel::Off`], each
//! instrumentation site costs a single predictable branch. Counters-only
//! skips the event buffer; full tracing appends to a `Vec` per event.
//!
//! # Determinism
//!
//! Everything here is driven by simulation time ([`dcsim::Nanos`]) and
//! seed-deterministic payloads, so trace output is byte-identical across
//! repeated runs and across scheduler implementations (heap vs wheel
//! dispatch identical event streams, per the dcsim equivalence
//! guarantee). There are no wall-clock reads and no hash-ordered
//! collections anywhere in this crate.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod event;
mod metrics;
mod tracer;

pub use config::{Subsystem, SubsystemMask, TraceConfig, TraceLevel};
pub use event::TraceEvent;
pub use metrics::{LogHistogram, MetricsRegistry};
pub use tracer::{Tracer, ENABLED};
