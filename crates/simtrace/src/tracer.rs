//! The event buffer and its JSONL / Chrome exports.

use dcsim::Nanos;
use minijson::{obj, Value};

use crate::config::{Subsystem, TraceConfig, TraceLevel};
use crate::event::TraceEvent;
use crate::metrics::MetricsRegistry;

/// Whether the `trace` cargo feature is compiled in.
///
/// When `false`, [`Tracer::wants`] is a compile-time constant `false`
/// and every instrumentation site folds away entirely — the zero-cost
/// half of the gating contract. When `true`, the runtime
/// [`TraceConfig`] decides, costing one branch per site when off.
pub const ENABLED: bool = cfg!(feature = "trace");

/// Buffers structured events and end-of-run metrics for one simulation.
///
/// Owned by the simulated network (or any other producer); recording is
/// gated by [`Tracer::wants`] so disabled configurations never touch
/// the buffer. Time comes from the caller's simulation clock, so the
/// stream is deterministic and ordered.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    cfg: TraceConfig,
    events: Vec<(Nanos, TraceEvent)>,
    metrics: MetricsRegistry,
}

impl Tracer {
    /// A disabled tracer (records nothing).
    pub fn off() -> Self {
        Tracer::default()
    }

    /// A tracer with the given runtime configuration.
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            cfg,
            ..Tracer::default()
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Whether full-stream events from `sub` should be recorded.
    #[inline]
    pub fn wants(&self, sub: Subsystem) -> bool {
        ENABLED && self.cfg.level == TraceLevel::Full && self.cfg.subsystems.contains(sub)
    }

    /// Whether a CC state sample should be recorded for a flow that has
    /// processed `acks_seen` acknowledgements (sampled every
    /// `cc_sample_every`-th ACK).
    #[inline]
    pub fn wants_cc(&self, acks_seen: u64) -> bool {
        self.wants(Subsystem::Cc)
            && acks_seen.is_multiple_of(u64::from(self.cfg.cc_sample_every.max(1)))
    }

    /// Whether end-of-run counter/histogram publication is on.
    #[inline]
    pub fn counters_enabled(&self) -> bool {
        ENABLED && self.cfg.level >= TraceLevel::Counters
    }

    /// Append one event at simulation time `t` (no-op unless
    /// [`Tracer::wants`] its subsystem).
    #[inline]
    pub fn record(&mut self, t: Nanos, ev: TraceEvent) {
        if self.wants(ev.subsystem()) {
            if self.events.len() == self.events.capacity() {
                // Traced runs buffer every event until the end of the run;
                // grow in large steps so recording stays cheap.
                self.events.reserve(4096);
            }
            self.events.push((t, ev));
        }
    }

    /// The buffered events, in recording order.
    pub fn events(&self) -> &[(Nanos, TraceEvent)] {
        &self.events
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The metrics registry (for reading and serialization).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The metrics registry, writable (for publication).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Deterministic JSONL: one compact object per event, one per line,
    /// terminated by a trailing newline (empty string when no events).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (t, ev) in &self.events {
            out.push_str(&ev.to_value(*t).to_string());
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_event` JSON (object form with a `traceEvents`
    /// array), loadable in Perfetto / `chrome://tracing`.
    pub fn to_chrome(&self) -> String {
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|(t, ev)| ev.chrome_value(*t))
            .collect();
        obj([
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", Value::from("ns")),
        ])
        .pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(flow: u32) -> TraceEvent {
        TraceEvent::FlowStart { flow, bytes: 1_000 }
    }

    #[test]
    fn off_tracer_records_nothing() {
        let mut tr = Tracer::off();
        tr.record(Nanos(10), ev(0));
        assert!(tr.is_empty());
        assert!(!tr.counters_enabled());
        assert_eq!(tr.to_jsonl(), "");
    }

    #[test]
    fn counters_level_skips_event_buffer() {
        let mut tr = Tracer::new(TraceConfig::counters());
        tr.record(Nanos(10), ev(0));
        assert!(tr.is_empty());
        assert_eq!(tr.counters_enabled(), ENABLED);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn full_tracer_buffers_and_filters() {
        let mut tr = Tracer::new(TraceConfig::full().with_filter(Subsystem::Flow));
        tr.record(Nanos(10), ev(1));
        tr.record(
            Nanos(20),
            TraceEvent::PfcPause {
                node: 0,
                port: 0,
                paused: true,
            },
        );
        assert_eq!(tr.len(), 1, "pfc filtered out");
        let jsonl = tr.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let v = Value::parse(jsonl.lines().next().expect("one line")).expect("jsonl line parses");
        assert_eq!(v["ev"].as_str(), Some("flow_start"));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn cc_sampling_cadence() {
        let tr = Tracer::new(TraceConfig::full().with_cc_sample_every(4));
        assert!(tr.wants_cc(0));
        assert!(!tr.wants_cc(1));
        assert!(!tr.wants_cc(3));
        assert!(tr.wants_cc(4));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn chrome_export_has_trace_events_array() {
        let mut tr = Tracer::new(TraceConfig::full());
        tr.record(Nanos(10), ev(0));
        tr.record(
            Nanos(5_000),
            TraceEvent::FlowFinish {
                flow: 0,
                bytes: 1_000,
                fct_ns: 4_990,
            },
        );
        let v = Value::parse(&tr.to_chrome()).expect("chrome export parses");
        let evs = v["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1]["ph"].as_str(), Some("X"));
    }
}
