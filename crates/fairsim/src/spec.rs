//! Protocol/variant specification and per-flow CC construction.

use dcsim::{BitRate, Bytes, DetRng, Nanos};
use faircc::CongestionControl;

use cc_dcqcn::{Dcqcn, DcqcnConfig};
use cc_hpcc::{Hpcc, HpccConfig};
use cc_swift::{Swift, SwiftConfig};
use cc_timely::{Timely, TimelyConfig};

/// Topology facts the protocols need.
#[derive(Debug, Clone, Copy)]
pub struct NetEnv {
    /// Base (uncongested) round-trip time of the longest path.
    pub base_rtt: Nanos,
    /// Host NIC line rate.
    pub line_rate: BitRate,
    /// The network's minimum bandwidth-delay product — the paper's VAI
    /// `Token_Thresh` (≈ 50 KB at 100 Gbps).
    pub min_bdp: Bytes,
    /// Swift flow-based-scaling max window for this topology scale
    /// (paper: 50 packets on the incast star, 100 on the fat-tree).
    pub fbs_max_cwnd: f64,
    /// Worst-case switch hop count (Swift VAI threshold uses the static
    /// per-hop-scaled target).
    pub max_hops: u8,
}

impl NetEnv {
    /// Environment for the paper's single-switch incast star.
    pub fn incast_star(base_rtt: Nanos) -> Self {
        NetEnv {
            base_rtt,
            line_rate: BitRate::from_gbps(100),
            min_bdp: Bytes::from_kb(50),
            fbs_max_cwnd: 50.0,
            max_hops: 1,
        }
    }

    /// Environment for the 3-layer fat-tree.
    pub fn fat_tree(base_rtt: Nanos) -> Self {
        NetEnv {
            base_rtt,
            line_rate: BitRate::from_gbps(100),
            min_bdp: Bytes::from_kb(50),
            fbs_max_cwnd: 100.0,
            max_hops: 5,
        }
    }
}

/// Which protocol family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// HPCC (INT-based).
    Hpcc,
    /// Swift (delay-based).
    Swift,
    /// DCQCN (ECN/CNP-based) — needs RED enabled on switches.
    Dcqcn,
    /// Timely (RTT-gradient, rate-based) — the Swift ancestor whose HAI
    /// the paper recommends; included to test mechanism generality.
    Timely,
}

/// Which of the paper's variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The protocol's stock parameters (AI = 50 Mbps).
    Default,
    /// AI raised to 1 Gbps ("HPCC 1Gbps" / "Swift 1Gbps").
    HighAi,
    /// Probabilistic feedback baseline.
    Probabilistic,
    /// Variable AI only (ablation).
    Vai,
    /// Sampling Frequency only (ablation).
    Sf,
    /// The paper's combined mechanism ("VAI SF").
    VaiSf,
}

impl Variant {
    /// All variants the paper plots for HPCC/Swift.
    pub fn paper_set() -> [Variant; 4] {
        [
            Variant::Default,
            Variant::HighAi,
            Variant::Probabilistic,
            Variant::VaiSf,
        ]
    }
}

/// Cross-cutting knobs on a [`CcSpec`] that are orthogonal to the
/// protocol/variant pair.
///
/// Collecting them here keeps `CcSpec` itself a stable two-axis key and
/// lets new options arrive without another `with_*` method per field:
/// construct with [`CcOptions::default`] and override fields, or chain
/// the builder methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CcOptions {
    /// Timely-style hyper additive increase (Swift only; the extension
    /// the paper's evaluation suggests for Swift's Hadoop median).
    pub hyper_ai: bool,
    /// Record a `cc_update` trace event once every this many ACKs when
    /// full tracing is enabled. `0` means "inherit the run's
    /// `TraceConfig` cadence" (the scenario layer ignores zero).
    pub trace_sample_every: u32,
}

impl CcOptions {
    /// Enable Timely-style hyper AI (meaningful for Swift only).
    pub fn hyper_ai(mut self) -> Self {
        self.hyper_ai = true;
        self
    }

    /// Sample `cc_update` trace events once every `n` ACKs.
    pub fn trace_sample_every(mut self, n: u32) -> Self {
        self.trace_sample_every = n;
        self
    }
}

/// A protocol + variant pair: the unit every figure compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcSpec {
    /// Protocol family.
    pub kind: ProtocolKind,
    /// Variant.
    pub variant: Variant,
    /// Cross-cutting options (hyper AI, trace sampling cadence, ...).
    pub opts: CcOptions,
}

impl CcSpec {
    /// Shorthand constructor.
    pub fn new(kind: ProtocolKind, variant: Variant) -> Self {
        CcSpec {
            kind,
            variant,
            opts: CcOptions::default(),
        }
    }

    /// Replace the option block wholesale.
    pub fn with_options(mut self, opts: CcOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Enable Timely-style hyper AI (meaningful for Swift only).
    ///
    /// Compatibility shim for the pre-`CcOptions` API; equivalent to
    /// `self.with_options(self.opts.hyper_ai())`.
    pub fn with_hyper_ai(mut self) -> Self {
        self.opts.hyper_ai = true;
        self
    }

    /// Whether this spec needs RED/ECN marking enabled on switches.
    pub fn needs_red(&self) -> bool {
        self.kind == ProtocolKind::Dcqcn
    }

    /// The figure-legend label ("HPCC 1Gbps", "Swift VAI SF", ...).
    pub fn label(&self) -> String {
        let base = match self.kind {
            ProtocolKind::Hpcc => "HPCC",
            ProtocolKind::Swift => "Swift",
            ProtocolKind::Dcqcn => "DCQCN",
            ProtocolKind::Timely => "Timely",
        };
        let suffix = match self.variant {
            Variant::Default => "",
            Variant::HighAi => " 1Gbps",
            Variant::Probabilistic => " Probabilistic",
            Variant::Vai => " VAI",
            Variant::Sf => " SF",
            Variant::VaiSf => " VAI SF",
        };
        let hai = if self.opts.hyper_ai { " HAI" } else { "" };
        format!("{base}{suffix}{hai}")
    }

    /// Build one flow's congestion-control instance.
    ///
    /// `flow_seed` must be unique per flow so the probabilistic variants
    /// draw independent streams.
    pub fn build(&self, env: &NetEnv, flow_seed: u64) -> Box<dyn CongestionControl> {
        let rng = DetRng::new(flow_seed);
        match self.kind {
            ProtocolKind::Hpcc => {
                let base = HpccConfig::paper_default(env.base_rtt, env.line_rate);
                let cfg = match self.variant {
                    Variant::Default => base,
                    Variant::HighAi => HpccConfig::high_ai(env.base_rtt, env.line_rate),
                    Variant::Probabilistic => {
                        HpccConfig::probabilistic(env.base_rtt, env.line_rate)
                    }
                    Variant::VaiSf => HpccConfig::vai_sf(env.base_rtt, env.line_rate, env.min_bdp),
                    Variant::Vai => HpccConfig {
                        vai: Some(faircc::VaiConfig::hpcc_default(env.min_bdp.as_f64())),
                        ..base
                    },
                    Variant::Sf => HpccConfig {
                        sf: Some(faircc::SfConfig::paper_default()),
                        ..base
                    },
                };
                Box::new(Hpcc::new(cfg, rng))
            }
            ProtocolKind::Swift => {
                let base =
                    SwiftConfig::paper_default(env.base_rtt, env.line_rate, env.fbs_max_cwnd);
                let cfg = match self.variant {
                    Variant::Default => base,
                    Variant::HighAi => {
                        SwiftConfig::high_ai(env.base_rtt, env.line_rate, env.fbs_max_cwnd)
                    }
                    Variant::Probabilistic => {
                        SwiftConfig::probabilistic(env.base_rtt, env.line_rate, env.fbs_max_cwnd)
                    }
                    Variant::VaiSf => {
                        SwiftConfig::vai_sf(env.base_rtt, env.line_rate, env.max_hops)
                    }
                    Variant::Vai => {
                        let full = SwiftConfig::vai_sf(env.base_rtt, env.line_rate, env.max_hops);
                        SwiftConfig { sf: None, ..full }
                    }
                    Variant::Sf => SwiftConfig {
                        sf: Some(faircc::SfConfig::paper_default()),
                        ..base
                    },
                };
                let cfg = SwiftConfig {
                    hyper_ai: self
                        .opts
                        .hyper_ai
                        .then(cc_swift::HyperAiConfig::timely_default),
                    ..cfg
                };
                Box::new(Swift::new(cfg, rng))
            }
            ProtocolKind::Dcqcn => {
                // DCQCN has no paper variants; all map to the stock machine.
                Box::new(Dcqcn::new(DcqcnConfig {
                    line_rate: env.line_rate,
                    ..DcqcnConfig::default_100g()
                }))
            }
            ProtocolKind::Timely => {
                let base = TimelyConfig {
                    line_rate: env.line_rate,
                    ..TimelyConfig::default_100g(env.base_rtt)
                };
                let cfg = match self.variant {
                    Variant::VaiSf => TimelyConfig {
                        line_rate: env.line_rate,
                        ..TimelyConfig::with_vai_sf(env.base_rtt)
                    },
                    Variant::Vai => {
                        let full = TimelyConfig::with_vai_sf(env.base_rtt);
                        TimelyConfig {
                            line_rate: env.line_rate,
                            sf: None,
                            ..full
                        }
                    }
                    Variant::Sf => TimelyConfig {
                        sf: Some(faircc::SfConfig::paper_default()),
                        ..base
                    },
                    // Timely has no 1 Gbps / probabilistic baselines in
                    // the paper; they map to stock.
                    Variant::Default | Variant::HighAi | Variant::Probabilistic => base,
                };
                Box::new(Timely::new(cfg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> NetEnv {
        NetEnv::incast_star(Nanos::from_micros(4))
    }

    /// The parameter listing of paper Sections III-D and VI-A, asserted
    /// against the default configurations (referenced from DESIGN.md's
    /// experiment index as the paper's "table equivalent").
    #[test]
    fn config_matches_paper() {
        use cc_hpcc::HpccConfig;
        use cc_swift::SwiftConfig;
        use faircc::SfConfig;
        use workloads::IncastConfig;

        let rtt = Nanos::from_micros(4);
        let line = dcsim::BitRate::from_gbps(100);

        // HPCC: AI = 50 Mbps, eta = 0.95, maxStage = 5; high-AI = 1 Gbps.
        let h = HpccConfig::paper_default(rtt, line);
        assert_eq!(h.eta, 0.95);
        assert_eq!(h.max_stage, 5);
        assert!((h.wai - 25.0).abs() < 1e-9); // 50 Mbps x 4 us / 8
        let h1g = HpccConfig::high_ai(rtt, line);
        assert!((h1g.wai - 500.0).abs() < 1e-9);

        // Swift: beta = 0.8, max mdf = 0.5 (factor floor), base target
        // 5 us, 2 us per hop; FBS max window 50 on the incast star.
        let s = SwiftConfig::paper_default(rtt, line, 50.0);
        assert_eq!(s.beta, 0.8);
        assert_eq!(s.max_mdf, 0.5);
        assert_eq!(s.base_target, Nanos::from_micros(5));
        assert_eq!(s.hop_scale, Nanos::from_micros(2));
        assert_eq!(s.fbs.expect("FBS variant sets fbs").max_cwnd, 50.0);

        // VAI: Token_Thresh = min BDP (~50 KB), 1 token/KB (HPCC) or
        // 30 ns/token (Swift), Bank_Cap 1000, AI_Cap 100, dampener 8.
        let hv = HpccConfig::vai_sf(rtt, line, Bytes::from_kb(50));
        let vai = hv.vai.expect("vai_sf sets vai");
        assert_eq!(vai.token_thresh, 50_000.0);
        assert_eq!(vai.ai_div, 1_000.0);
        assert_eq!(vai.bank_cap, 1_000.0);
        assert_eq!(vai.ai_cap, 100.0);
        assert_eq!(vai.dampener_constant, 8.0);
        let sv = SwiftConfig::vai_sf(rtt, line, 1);
        let svai = sv.vai.expect("vai_sf sets vai");
        assert_eq!(svai.ai_div, 30.0);
        // Token_Thresh = static target (5 + 2 us) + 4 us BDP delay.
        assert_eq!(svai.token_thresh, 11_000.0);
        assert!(sv.fbs.is_none()); // VAI SF drops FBS
        assert!(sv.always_ai);

        // SF: s = 30 ACKs.
        assert_eq!(SfConfig::paper_default().acks_per_decrease, 30);
        assert_eq!(hv.sf.expect("vai_sf sets sf").acks_per_decrease, 30);

        // Incast: 2 flows per 20 us, 1 MB each, 16 or 96 senders.
        let i16 = IncastConfig::paper_16_1();
        assert_eq!(i16.senders, 16);
        assert_eq!(i16.flows_per_interval, 2);
        assert_eq!(i16.interval, Nanos::from_micros(20));
        assert_eq!(i16.flow_size, Bytes::from_mb(1));
        assert_eq!(IncastConfig::paper_96_1().senders, 96);

        // Topology: 320-host fat-tree, 100G hosts, 400G fabric, 1 us.
        let ft = netsim::FatTreeConfig::paper();
        assert_eq!(ft.num_hosts(), 320);
        assert_eq!(ft.host_rate, dcsim::BitRate::from_gbps(100));
        assert_eq!(ft.fabric_rate, dcsim::BitRate::from_gbps(400));
        assert_eq!(ft.prop, Nanos::MICRO);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(
            CcSpec::new(ProtocolKind::Hpcc, Variant::Default).label(),
            "HPCC"
        );
        assert_eq!(
            CcSpec::new(ProtocolKind::Hpcc, Variant::HighAi).label(),
            "HPCC 1Gbps"
        );
        assert_eq!(
            CcSpec::new(ProtocolKind::Swift, Variant::Probabilistic).label(),
            "Swift Probabilistic"
        );
        assert_eq!(
            CcSpec::new(ProtocolKind::Swift, Variant::VaiSf).label(),
            "Swift VAI SF"
        );
    }

    #[test]
    fn build_produces_matching_names() {
        for (kind, variant, want) in [
            (ProtocolKind::Hpcc, Variant::Default, "HPCC"),
            (ProtocolKind::Hpcc, Variant::VaiSf, "HPCC VAI SF"),
            (ProtocolKind::Swift, Variant::VaiSf, "Swift VAI SF"),
            (ProtocolKind::Dcqcn, Variant::Default, "DCQCN"),
        ] {
            let cc = CcSpec::new(kind, variant).build(&env(), 1);
            assert_eq!(cc.name(), want);
        }
    }

    #[test]
    fn hyper_ai_label_and_build() {
        let spec = CcSpec::new(ProtocolKind::Swift, Variant::Default).with_hyper_ai();
        assert_eq!(spec.label(), "Swift HAI");
        let cc = spec.build(&env(), 1);
        assert_eq!(cc.name(), "Swift"); // HAI changes dynamics, not family
        let both = CcSpec::new(ProtocolKind::Swift, Variant::VaiSf).with_hyper_ai();
        assert_eq!(both.label(), "Swift VAI SF HAI");
    }

    #[test]
    fn only_dcqcn_needs_red() {
        assert!(CcSpec::new(ProtocolKind::Dcqcn, Variant::Default).needs_red());
        assert!(!CcSpec::new(ProtocolKind::Hpcc, Variant::Default).needs_red());
        assert!(!CcSpec::new(ProtocolKind::Swift, Variant::VaiSf).needs_red());
    }

    #[test]
    fn timely_variants_build() {
        for (variant, want) in [
            (Variant::Default, "Timely"),
            (Variant::VaiSf, "Timely VAI SF"),
            (Variant::Sf, "Timely SF"),
        ] {
            let cc = CcSpec::new(ProtocolKind::Timely, variant).build(&env(), 3);
            assert_eq!(cc.name(), want);
        }
    }

    #[test]
    fn all_specs_start_at_line_rate() {
        for kind in [
            ProtocolKind::Hpcc,
            ProtocolKind::Swift,
            ProtocolKind::Dcqcn,
            ProtocolKind::Timely,
        ] {
            for variant in Variant::paper_set() {
                let cc = CcSpec::new(kind, variant).build(&env(), 9);
                let r = cc.current_rate();
                assert!(
                    (r.as_f64() - 100e9).abs() / 100e9 < 0.01,
                    "{:?}/{:?} starts at {r}",
                    kind,
                    variant
                );
            }
        }
    }
}
