//! Plain-text and CSV rendering for the figure harness.
//!
//! The `repro` binary prints each figure as an aligned text table (the
//! "same rows/series the paper reports") and can also emit CSV for
//! downstream plotting.

use std::fmt::Write as _;

/// An aligned text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", c, width = widths[i]);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a byte count the way the paper's axes do (KB/MB).
pub fn fmt_size(bytes: u64) -> String {
    if bytes >= 1_000_000 {
        format!("{:.1}MB", bytes as f64 / 1e6)
    } else if bytes >= 1_000 {
        format!("{:.0}KB", bytes as f64 / 1e3)
    } else {
        format!("{bytes}B")
    }
}

/// Format a float with three significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["t(us)", "jain"]);
        t.row(vec!["5", "0.500"]);
        t.row(vec!["100", "1.000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("t(us)"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned numbers line up at the column edge.
        assert!(lines[2].ends_with("0.500"));
        assert!(lines[3].ends_with("1.000"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(512), "512B");
        assert_eq!(fmt_size(50_000), "50KB");
        assert_eq!(fmt_size(2_500_000), "2.5MB");
    }
}
