//! The experiment drivers, unified behind the [`Scenario`] trait.

use dcsim::{EventQueue, Nanos, Scheduler, SchedulerKind, Simulation, TimingWheel};
use metrics::{jain, SlowdownRecord, SlowdownTable};
use netsim::{
    run_watched, FatTreeConfig, FaultPlan, FaultStats, FctRecord, FlapSchedule, FlowSpec,
    LinkFault, LossModel, MonitorConfig, NetConfig, Network, RtoBackoff, RunOutcome, Topology,
};
use simtrace::{TraceConfig, TraceLevel, Tracer};
use workloads::{
    arrivals::{mixed_arrivals, ArrivalConfig},
    distributions, staggered_incast, IncastConfig,
};

use crate::spec::{CcSpec, NetEnv};

/// Cross-cutting parameters of one experiment run: everything that is a
/// property of *how* a scenario executes rather than *what* it simulates.
///
/// Scenario structs describe the workload (topology, flows, protocol);
/// a `RunCtx` carries the seed, the event-scheduler backend, and the
/// observability configuration. The same scenario value can be re-run
/// under different contexts (new seed, wheel vs. heap, tracing on/off)
/// without mutating it.
#[derive(Debug, Clone, Copy)]
pub struct RunCtx {
    /// Root seed for the run's deterministic randomness.
    pub seed: u64,
    /// Event scheduler backing the run (results are scheduler-invariant;
    /// the wheel is faster on dense timer populations).
    pub scheduler: SchedulerKind,
    /// Trace/metrics collection level and subsystem filter.
    pub trace: TraceConfig,
}

impl RunCtx {
    /// A context with the given seed, default scheduler, and tracing off.
    pub fn new(seed: u64) -> Self {
        RunCtx {
            seed,
            scheduler: SchedulerKind::default(),
            trace: TraceConfig::off(),
        }
    }

    /// Select the event-scheduler backend.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Select the trace/metrics configuration.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }
}

/// An experiment that can be run under a [`RunCtx`].
///
/// All three drivers ([`IncastScenario`], [`DatacenterScenario`],
/// [`TraceScenario`]) implement this, so harness code can be generic over
/// the scenario type and thread seed/scheduler/trace settings through one
/// place instead of poking per-scenario fields.
pub trait Scenario {
    /// The result type the run produces.
    type Outcome;

    /// Execute the scenario under the given context.
    fn run_with(&self, ctx: &RunCtx) -> Self::Outcome;
}

/// Prime and run a primed network to `deadline` under scheduler `S`,
/// with a stall watchdog (see [`netsim::run_watched`]).
///
/// Every scenario funnels through here, so heap and wheel runs execute the
/// exact same driver code — the scheduler is the only degree of freedom,
/// which is what the scheduler-equivalence tests rely on. The watchdog
/// chunking is event-order transparent, so it does not perturb results.
///
/// The final `u64` is the scheduler's occupancy high-water mark (0 unless
/// the `trace` feature is compiled in).
fn drive<S: Scheduler<netsim::Event> + Default>(
    net: Network,
    deadline: Nanos,
    budget: u64,
    watchdog: Nanos,
) -> (Network, RunOutcome, u64, u64) {
    let mut sim = Simulation::with_scheduler(net, S::default());
    {
        let (w, q) = sim.split_mut();
        w.prime(q);
    }
    let outcome = run_watched(&mut sim, deadline, budget, watchdog);
    let handled = sim.events_handled();
    let occupancy = sim.occupancy_high_water() as u64;
    (sim.into_world(), outcome, handled, occupancy)
}

/// Run `net` to `deadline` on the scheduler selected by `kind`.
pub(crate) fn run_network(
    kind: SchedulerKind,
    net: Network,
    deadline: Nanos,
    budget: u64,
    watchdog: Nanos,
) -> (Network, RunOutcome, u64, u64) {
    match kind {
        SchedulerKind::Heap => drive::<EventQueue<netsim::Event>>(net, deadline, budget, watchdog),
        SchedulerKind::Wheel => {
            drive::<TimingWheel<netsim::Event>>(net, deadline, budget, watchdog)
        }
    }
}

/// Default stall-watchdog window for a run with the given deadline: a
/// quarter of the deadline, floored at 1 ms so RTT-scale quiet spells and
/// backed-off RTO waits never read as stalls (see [`netsim::run_watched`]).
fn default_watchdog(deadline: Nanos) -> Nanos {
    Nanos(deadline.as_u64() / 4).max(Nanos::from_millis(1))
}

/// Install a tracer on a freshly built network, honoring the spec-level
/// CC sampling cadence when the context leaves it unset.
fn install_tracer(net: &mut Network, cc: &CcSpec, ctx: &RunCtx) {
    let mut tcfg = ctx.trace;
    if cc.opts.trace_sample_every > 1 {
        tcfg = tcfg.with_cc_sample_every(cc.opts.trace_sample_every);
    }
    net.set_tracer(Tracer::new(tcfg));
}

/// Publish end-of-run metrics and detach the tracer for the result.
///
/// Returns `None` when tracing was configured off or compiled out, so
/// results stay lightweight on untraced runs.
fn finish_tracer(net: &mut Network) -> Option<Tracer> {
    if !simtrace::ENABLED || net.tracer().config().level == TraceLevel::Off {
        return None;
    }
    net.publish_metrics();
    Some(net.take_tracer())
}

/// A 16-1 / 96-1 staggered-incast run (Figures 1-3, 5, 6, 8, 9).
#[derive(Debug, Clone)]
pub struct IncastScenario {
    /// Incast shape (senders, flow size, stagger).
    pub incast: IncastConfig,
    /// Protocol under test.
    pub cc: CcSpec,
    /// Scenario seed.
    pub seed: u64,
    /// Monitor sampling cadence (paper figures resolve ~10 µs features).
    pub sample_interval: Nanos,
    /// Hard simulation horizon (safety net; incasts normally drain first).
    pub horizon: Nanos,
    /// Event scheduler backing the run (results are scheduler-invariant;
    /// the wheel is faster on dense timer populations).
    pub scheduler: SchedulerKind,
}

impl IncastScenario {
    /// The paper's configuration for a given sender count and protocol.
    pub fn paper(senders: usize, cc: CcSpec, seed: u64) -> Self {
        let incast = if senders == 96 {
            IncastConfig::paper_96_1()
        } else {
            IncastConfig {
                senders,
                ..IncastConfig::paper_16_1()
            }
        };
        IncastScenario {
            incast,
            cc,
            seed,
            sample_interval: Nanos::from_micros(5),
            horizon: Nanos::from_millis(50),
            scheduler: SchedulerKind::default(),
        }
    }

    /// Select the event-scheduler backend (chainable).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Compatibility shim: run under a context assembled from this
    /// scenario's own `seed`/`scheduler` fields, with tracing off.
    /// Prefer [`Scenario::run_with`] for new code.
    pub fn run(&self) -> IncastResult {
        self.run_with(&RunCtx::new(self.seed).with_scheduler(self.scheduler))
    }
}

impl Scenario for IncastScenario {
    type Outcome = IncastResult;

    /// Run to completion (or the horizon) and collect the figure series.
    fn run_with(&self, ctx: &RunCtx) -> IncastResult {
        let topo = Topology::paper_star(self.incast.senders + 1);
        let env = NetEnv::incast_star(topo.base_rtt);
        let hosts = topo.hosts.clone();
        let receiver = hosts[self.incast.senders];
        let switch = topo.switches[0];

        let mut builder = topo.builder;
        if self.cc.needs_red() {
            builder.red_on_switches(netsim::RedConfig::dcqcn_100g());
        }
        let mut net = builder.build(
            NetConfig {
                seed: ctx.seed,
                ..NetConfig::default()
            },
            MonitorConfig {
                sample_interval: Some(self.sample_interval),
                sample_until: self.horizon,
                watch_ports: vec![],
                track_flow_rates: true,
            },
        );
        install_tracer(&mut net, &self.cc, ctx);
        // Watch the bottleneck: the switch's egress port to the receiver.
        let bottleneck = net
            .port_towards(switch, receiver)
            .expect("receiver is attached to the switch");
        net.monitor.cfg.watch_ports = vec![bottleneck];

        for (i, f) in staggered_incast(&self.incast).iter().enumerate() {
            let cc = self
                .cc
                .build(&env, ctx.seed.wrapping_mul(1009).wrapping_add(i as u64));
            net.add_flow(
                FlowSpec {
                    src: hosts[f.src],
                    dst: hosts[f.dst],
                    size: f.size,
                    start: f.start,
                },
                cc,
            );
        }

        let (mut net, outcome, events_handled, occupancy_hwm) = run_network(
            ctx.scheduler,
            net,
            self.horizon,
            2_000_000_000,
            default_watchdog(self.horizon),
        );
        assert!(
            outcome != RunOutcome::Budget,
            "incast run exploded its event budget"
        );

        // Jain over a trailing window: instantaneous 5 us rates are shot
        // noise once the fair share falls near one packet per interval
        // (96 flows at ~1 Gbps each send a packet every ~8 us), so the
        // index is computed over enough trailing samples to cover several
        // packets per flow. The window grows with the incast degree.
        let window_us = (self.incast.senders as f64 * 1.25).max(20.0);
        // simlint: allow(D4) — dimensionless sample count, not a unit quantity
        let k = (window_us / self.sample_interval.as_micros_f64()).ceil() as usize;
        let jain_series = jain_over_trailing_window(net.monitor.samples(), k.max(1));
        let mut queue_series = Vec::new();
        for s in net.monitor.samples() {
            if let Some(q) = s.queue_bytes.first() {
                queue_series.push((s.t.as_micros_f64(), *q));
            }
        }
        let all_finished = net.all_finished();
        let fcts = net.monitor.fcts().to_vec();
        let mut raw: Vec<(u32, u64, f64)> = Vec::with_capacity(fcts.len());
        for r in &fcts {
            // Same denominator as the datacenter scenarios: the pristine
            // ideal FCT, so staggered-queueing delay shows up as slowdown.
            let ideal = net.ideal_fct(r.flow);
            let slowdown = (r.fct().as_u64() as f64 / ideal.as_u64() as f64).max(1.0);
            raw.push((r.flow.0, r.size.as_u64(), slowdown));
        }
        IncastResult {
            label: self.cc.label(),
            jain: jain_series,
            queue: queue_series,
            fcts,
            raw,
            all_finished,
            outcome,
            events_handled,
            occupancy_hwm,
            trace: finish_tracer(&mut net),
        }
    }
}

/// Compute a Jain-index time series where each point uses per-flow rates
/// averaged over the trailing `k` monitor samples (flows contribute to a
/// point only while active; see `IncastScenario::run` for why smoothing
/// is needed at high incast degree).
fn jain_over_trailing_window(samples: &[netsim::Sample], k: usize) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        if s.flow_rates.is_empty() {
            continue;
        }
        let lo = i.saturating_sub(k - 1);
        // Average each currently-active flow's rate over the window,
        // counting only intervals where it appears.
        let mut rates = Vec::with_capacity(s.flow_rates.len());
        for &(fid, _) in &s.flow_rates {
            let mut sum = 0.0;
            let mut n = 0u32;
            for w in &samples[lo..=i] {
                if let Some(&(_, r)) = w.flow_rates.iter().find(|(f, _)| *f == fid) {
                    sum += r;
                    n += 1;
                }
            }
            if n > 0 {
                rates.push(sum / n as f64);
            }
        }
        if !rates.is_empty() {
            out.push((s.t.as_micros_f64(), jain(&rates)));
        }
    }
    out
}

/// Output of one incast run.
#[derive(Debug, Clone)]
pub struct IncastResult {
    /// Figure-legend label.
    pub label: String,
    /// `(time µs, Jain index)` over the run, active flows only.
    pub jain: Vec<(f64, f64)>,
    /// `(time µs, bottleneck queue bytes)`.
    pub queue: Vec<(f64, u64)>,
    /// Completion records (start-vs-finish scatter).
    pub fcts: Vec<FctRecord>,
    /// Per-flow raw outcomes `(flow id, size, slowdown)` against the
    /// pristine ideal FCT — the sample stream the fleet sweep harness
    /// aggregates into tail percentiles.
    pub raw: Vec<(u32, u64, f64)>,
    /// Whether every flow completed before the horizon.
    pub all_finished: bool,
    /// Structured run disposition from the stall watchdog (completed /
    /// horizon / stalled / budget).
    pub outcome: RunOutcome,
    /// Events the engine dispatched (scheduler-invariant; the perf
    /// baseline divides this by wall time for events/sec).
    pub events_handled: u64,
    /// Scheduler occupancy high-water mark (0 unless the `trace`
    /// feature is compiled in).
    pub occupancy_hwm: u64,
    /// Collected trace events and metrics; `None` when tracing was off.
    pub trace: Option<Tracer>,
}

impl IncastResult {
    /// Time (µs) at which the Jain index first reaches `thresh` *and*
    /// stays at or above it for the remainder of the heavy phase — the
    /// convergence-to-fairness headline number. Returns `None` if never.
    pub fn convergence_time(&self, thresh: f64) -> Option<f64> {
        // Find the last sample below the threshold; convergence is the
        // next sample's time. (Jain dips every time new flows join, so
        // "first crossing" would be misleadingly early.)
        let mut conv: Option<f64> = None;
        for &(t, j) in &self.jain {
            if j < thresh {
                conv = None;
            } else if conv.is_none() {
                conv = Some(t);
            }
        }
        conv
    }

    /// The unfairness integral `∫(1 − J(t)) dt` over the run, in
    /// µs·unfairness — the scalar convergence-quality summary (lower is
    /// better; see `metrics::unfairness_integral`).
    pub fn unfairness_integral(&self) -> f64 {
        metrics::unfairness_integral(&self.jain)
    }

    /// Peak bottleneck queue depth in bytes.
    pub fn peak_queue(&self) -> u64 {
        self.queue.iter().map(|&(_, q)| q).max().unwrap_or(0)
    }

    /// Mean bottleneck queue depth (bytes) over samples where any flow
    /// was active.
    pub fn mean_queue(&self) -> f64 {
        if self.queue.is_empty() {
            return 0.0;
        }
        self.queue.iter().map(|&(_, q)| q as f64).sum::<f64>() / self.queue.len() as f64
    }

    /// Spread between the first and last flow completion (µs) — the
    /// quantity Figures 2/3/8/9 visualize: fair protocols finish all
    /// staggered flows nearly together.
    pub fn finish_spread_us(&self) -> f64 {
        let finishes: Vec<f64> = self.fcts.iter().map(|r| r.finish.as_micros_f64()).collect();
        if finishes.len() < 2 {
            return 0.0;
        }
        let max = finishes.iter().cloned().fold(f64::MIN, f64::max);
        let min = finishes.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }

    /// `(start µs, finish µs)` pairs, in flow order (the scatter data).
    pub fn start_finish(&self) -> Vec<(f64, f64)> {
        let mut v: Vec<(f64, f64)> = self
            .fcts
            .iter()
            .map(|r| (r.start.as_micros_f64(), r.finish.as_micros_f64()))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v
    }
}

/// A fat-tree datacenter run (Figures 10-13).
#[derive(Debug, Clone)]
pub struct DatacenterScenario {
    /// Topology.
    pub fat_tree: FatTreeConfig,
    /// Distribution names (one, or two mixed 50/50 — see
    /// [`workloads::distributions::by_name`]).
    pub workloads: Vec<String>,
    /// Offered load fraction (paper: 0.5).
    pub load: f64,
    /// Arrival horizon (paper: 50 ms; the run drains afterwards).
    pub horizon: Nanos,
    /// Protocol under test.
    pub cc: CcSpec,
    /// Scenario seed.
    pub seed: u64,
    /// Event scheduler backing the run.
    pub scheduler: SchedulerKind,
}

impl DatacenterScenario {
    /// The reduced-scale default used by the figure harness (see
    /// DESIGN.md's substitution table): 32-host fat-tree, 2 ms of
    /// arrivals. Pass `FatTreeConfig::paper()` and 50 ms for full scale.
    pub fn reduced(workloads: Vec<String>, cc: CcSpec, seed: u64) -> Self {
        DatacenterScenario {
            fat_tree: FatTreeConfig::reduced(),
            workloads,
            load: 0.5,
            horizon: Nanos::from_millis(2),
            cc,
            seed,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Select the event-scheduler backend (chainable).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Compatibility shim: run under a context assembled from this
    /// scenario's own `seed`/`scheduler` fields, with tracing off.
    /// Prefer [`Scenario::run_with`] for new code.
    pub fn run(&self) -> DatacenterResult {
        self.run_with(&RunCtx::new(self.seed).with_scheduler(self.scheduler))
    }
}

impl Scenario for DatacenterScenario {
    type Outcome = DatacenterResult;

    /// Run and build the slowdown tables.
    fn run_with(&self, ctx: &RunCtx) -> DatacenterResult {
        let topo = self.fat_tree.build();
        let env = NetEnv::fat_tree(topo.base_rtt);
        let hosts = topo.hosts.clone();

        let mut builder = topo.builder;
        if self.cc.needs_red() {
            builder.red_on_switches(netsim::RedConfig::dcqcn_100g());
        }
        let mut net = builder.build(
            NetConfig {
                seed: ctx.seed,
                ..NetConfig::default()
            },
            MonitorConfig::default(), // FCTs only; per-flow sampling off
        );
        install_tracer(&mut net, &self.cc, ctx);

        let dists: Vec<_> = self
            .workloads
            .iter()
            .map(|n| distributions::by_name(n).unwrap_or_else(|| panic!("unknown workload {n}")))
            .collect();
        let dist_refs: Vec<&workloads::EmpiricalCdf> = dists.iter().collect();
        let arrivals = mixed_arrivals(
            &ArrivalConfig {
                n_hosts: hosts.len(),
                host_rate: self.fat_tree.host_rate,
                load: self.load,
                horizon: self.horizon,
                seed: ctx.seed ^ 0xD15C0,
            },
            &dist_refs,
        );
        let n_flows = arrivals.len();
        for (i, f) in arrivals.iter().enumerate() {
            let cc = self
                .cc
                .build(&env, ctx.seed.wrapping_mul(31).wrapping_add(i as u64));
            net.add_flow(
                FlowSpec {
                    src: hosts[f.src],
                    dst: hosts[f.dst],
                    size: f.size,
                    start: f.start,
                },
                cc,
            );
        }

        // Arrivals stop at the horizon; give the tail 4x the horizon to
        // drain (starved long flows are exactly what we are measuring).
        let drain_deadline = Nanos(self.horizon.as_u64() * 5);
        let (mut net, outcome, events_handled, occupancy_hwm) = run_network(
            ctx.scheduler,
            net,
            drain_deadline,
            20_000_000_000,
            default_watchdog(drain_deadline),
        );

        let completed = net.monitor.fcts().len();
        let mut raw: Vec<(u32, u64, f64)> = Vec::with_capacity(completed);
        let records: Vec<SlowdownRecord> = net
            .monitor
            .fcts()
            .iter()
            .map(|r| {
                let ideal = net.ideal_fct(r.flow);
                // The ideal rounds serialization up per packet while the
                // link model carries picosecond residue, so a perfectly
                // scheduled flow can undershoot by a few ns; clamp at 1.
                let slowdown = (r.fct().as_u64() as f64 / ideal.as_u64() as f64).max(1.0);
                raw.push((r.flow.0, r.size.as_u64(), slowdown));
                SlowdownRecord {
                    size: r.size.as_u64(),
                    slowdown,
                }
            })
            .collect();
        let table = SlowdownTable::build(records, 100, 99.9);
        DatacenterResult {
            label: self.cc.label(),
            table,
            n_flows,
            completed,
            raw,
            outcome,
            events_handled,
            occupancy_hwm,
            trace: finish_tracer(&mut net),
        }
    }
}

/// Output of one datacenter run.
#[derive(Debug, Clone)]
pub struct DatacenterResult {
    /// Figure-legend label.
    pub label: String,
    /// Binned slowdown statistics (tail = 99.9%, median, mean per bin).
    pub table: SlowdownTable,
    /// Flows offered.
    pub n_flows: usize,
    /// Flows completed before the drain deadline.
    pub completed: usize,
    /// Per-flow raw outcomes `(flow id, size, slowdown)` for paired
    /// cross-variant analysis (see [`crate::analysis`]).
    pub raw: Vec<(u32, u64, f64)>,
    /// Structured run disposition from the stall watchdog (completed /
    /// horizon / stalled / budget).
    pub outcome: RunOutcome,
    /// Events the engine dispatched (see [`IncastResult::events_handled`]).
    pub events_handled: u64,
    /// Scheduler occupancy high-water mark (0 unless the `trace`
    /// feature is compiled in).
    pub occupancy_hwm: u64,
    /// Collected trace events and metrics; `None` when tracing was off.
    pub trace: Option<Tracer>,
}

/// Replay an explicit arrival list (a saved trace, a permutation pattern,
/// or any custom workload) on a fat-tree under one protocol variant.
///
/// This is the general-purpose runner behind `workloads::trace` and the
/// permutation ablation: anything expressible as `Vec<FlowArrival>` can
/// be driven through any [`CcSpec`].
#[derive(Debug, Clone)]
pub struct TraceScenario {
    /// Topology.
    pub fat_tree: FatTreeConfig,
    /// The flows to inject (host indices into the topology's host list).
    pub arrivals: Vec<workloads::FlowArrival>,
    /// Protocol under test.
    pub cc: CcSpec,
    /// Scenario seed (network randomness; the arrivals are fixed).
    pub seed: u64,
    /// Hard simulation deadline.
    pub deadline: Nanos,
    /// Optional per-flow rate sampling (for Jain analysis; keep `None`
    /// for large traces).
    pub sample_interval: Option<Nanos>,
    /// Event scheduler backing the run.
    pub scheduler: SchedulerKind,
}

/// Output of a trace replay.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Figure-legend label.
    pub label: String,
    /// Completion records.
    pub fcts: Vec<netsim::FctRecord>,
    /// Per-flow `(flow id, size, slowdown)`.
    pub raw: Vec<(u32, u64, f64)>,
    /// `(time µs, Jain index)` when sampling was enabled.
    pub jain: Vec<(f64, f64)>,
    /// Whether every flow completed before the deadline.
    pub all_finished: bool,
    /// Structured run disposition from the stall watchdog (completed /
    /// horizon / stalled / budget).
    pub outcome: RunOutcome,
    /// Scheduler occupancy high-water mark (0 unless the `trace`
    /// feature is compiled in).
    pub occupancy_hwm: u64,
    /// Collected trace events and metrics; `None` when tracing was off.
    pub trace: Option<Tracer>,
}

impl TraceScenario {
    /// Select the event-scheduler backend (chainable).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Compatibility shim: run under a context assembled from this
    /// scenario's own `seed`/`scheduler` fields, with tracing off.
    /// Prefer [`Scenario::run_with`] for new code.
    pub fn run(&self) -> TraceResult {
        self.run_with(&RunCtx::new(self.seed).with_scheduler(self.scheduler))
    }
}

impl Scenario for TraceScenario {
    type Outcome = TraceResult;

    /// Run the replay.
    fn run_with(&self, ctx: &RunCtx) -> TraceResult {
        let topo = self.fat_tree.build();
        let env = NetEnv::fat_tree(topo.base_rtt);
        let hosts = topo.hosts.clone();
        let mut builder = topo.builder;
        if self.cc.needs_red() {
            builder.red_on_switches(netsim::RedConfig::dcqcn_100g());
        }
        let mut net = builder.build(
            NetConfig {
                seed: ctx.seed,
                ..NetConfig::default()
            },
            MonitorConfig {
                sample_interval: self.sample_interval,
                sample_until: self.deadline,
                watch_ports: vec![],
                track_flow_rates: self.sample_interval.is_some(),
            },
        );
        install_tracer(&mut net, &self.cc, ctx);
        for (i, f) in self.arrivals.iter().enumerate() {
            let cc = self
                .cc
                .build(&env, ctx.seed.wrapping_mul(61).wrapping_add(i as u64));
            net.add_flow(
                FlowSpec {
                    src: hosts[f.src],
                    dst: hosts[f.dst],
                    size: f.size,
                    start: f.start,
                },
                cc,
            );
        }
        let (mut net, outcome, _, occupancy_hwm) = run_network(
            ctx.scheduler,
            net,
            self.deadline,
            20_000_000_000,
            default_watchdog(self.deadline),
        );
        let raw: Vec<(u32, u64, f64)> = net
            .monitor
            .fcts()
            .iter()
            .map(|r| {
                let ideal = net.ideal_fct(r.flow);
                (
                    r.flow.0,
                    r.size.as_u64(),
                    (r.fct().as_u64() as f64 / ideal.as_u64() as f64).max(1.0),
                )
            })
            .collect();
        let jain: Vec<(f64, f64)> = net
            .monitor
            .samples()
            .iter()
            .filter(|s| !s.flow_rates.is_empty())
            .map(|s| {
                let rates: Vec<f64> = s.flow_rates.iter().map(|(_, r)| *r).collect();
                (s.t.as_micros_f64(), jain(&rates))
            })
            .collect();
        let fcts = net.monitor.fcts().to_vec();
        let all_finished = net.all_finished();
        TraceResult {
            label: self.cc.label(),
            fcts,
            raw,
            jain,
            all_finished,
            outcome,
            occupancy_hwm,
            trace: finish_tracer(&mut net),
        }
    }
}

/// A fat-tree datacenter run under deterministic fault injection: wire
/// loss on every fabric (switch–switch) link plus an optional periodic
/// flap of one agg–spine link, with exponential RTO backoff and failover
/// rerouting absorbing the damage.
///
/// The family sweeps two knobs — mean loss rate and flap cadence — and
/// reports slowdowns against the *pristine* ideal FCTs (the denominator
/// ignores outages, so rerouting detours and retransmissions show up as
/// slowdown, exactly like the paper's tail-latency figures).
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// Topology.
    pub fat_tree: FatTreeConfig,
    /// Workload distribution names (see [`DatacenterScenario::workloads`]).
    pub workloads: Vec<String>,
    /// Offered load fraction.
    pub load: f64,
    /// Arrival horizon (the run drains for 4x longer afterwards).
    pub horizon: Nanos,
    /// Protocol under test.
    pub cc: CcSpec,
    /// Scenario seed.
    pub seed: u64,
    /// Event scheduler backing the run.
    pub scheduler: SchedulerKind,
    /// Mean per-packet loss probability applied to every fabric link
    /// (0 = no wire loss).
    pub loss: f64,
    /// Model the loss as bursty Gilbert–Elliott (same mean as `loss`)
    /// instead of uniform Bernoulli.
    pub bursty: bool,
    /// Flap one agg–spine link `(period, down_for)`: down for `down_for`
    /// once every `period`, for the whole run. ECMP siblings survive, so
    /// the fabric stays connected and traffic fails over.
    pub flap: Option<(Nanos, Nanos)>,
}

impl FaultScenario {
    /// The reduced-scale default: 32-host fat-tree, 2 ms of arrivals,
    /// no faults until the knobs are set (chain [`with_loss`] /
    /// [`with_flap`]).
    ///
    /// [`with_loss`]: FaultScenario::with_loss
    /// [`with_flap`]: FaultScenario::with_flap
    pub fn reduced(workloads: Vec<String>, cc: CcSpec, seed: u64) -> Self {
        FaultScenario {
            fat_tree: FatTreeConfig::reduced(),
            workloads,
            load: 0.5,
            horizon: Nanos::from_millis(2),
            cc,
            seed,
            scheduler: SchedulerKind::default(),
            loss: 0.0,
            bursty: false,
            flap: None,
        }
    }

    /// Set the mean fabric loss rate (chainable).
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Use bursty Gilbert–Elliott loss instead of uniform (chainable).
    pub fn with_bursty(mut self) -> Self {
        self.bursty = true;
        self
    }

    /// Flap one agg–spine link: down for `down_for` every `period`
    /// (chainable).
    pub fn with_flap(mut self, period: Nanos, down_for: Nanos) -> Self {
        self.flap = Some((period, down_for));
        self
    }

    /// Select the event-scheduler backend (chainable).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Compatibility shim mirroring the other scenarios: run under a
    /// context assembled from this scenario's own fields, tracing off.
    pub fn run(&self) -> FaultResult {
        self.run_with(&RunCtx::new(self.seed).with_scheduler(self.scheduler))
    }

    /// The loss model realizing `self.loss` as a long-run mean.
    ///
    /// The bursty channel is clean while good and parks 1/6 of packets
    /// in the bad state (enter 0.05 / exit 0.25), so the bad-state loss
    /// is scaled 6x to preserve the requested mean.
    fn loss_model(&self) -> LossModel {
        if self.bursty {
            let (p_enter, p_exit) = (0.05, 0.25);
            let pi_bad = p_enter / (p_enter + p_exit);
            LossModel::bursty(p_enter, p_exit, (self.loss / pi_bad).min(1.0))
        } else {
            LossModel::uniform(self.loss)
        }
    }

    /// Build the fault plan against the constructed topology: loss on
    /// every fabric link, the flap on the *last* fabric link (an
    /// agg–spine link in the fat tree, which always has ECMP siblings).
    fn fault_plan(&self, topo: &Topology, deadline: Nanos) -> FaultPlan {
        let is_switch = |n: netsim::NodeId| topo.switches.contains(&n);
        let fabric: Vec<(netsim::NodeId, netsim::NodeId)> = topo
            .links
            .iter()
            .copied()
            .filter(|&(a, b)| is_switch(a) && is_switch(b))
            .collect();
        assert!(
            !fabric.is_empty(),
            "fault scenario requires a topology with fabric links"
        );
        let mut plan = FaultPlan::none();
        for (i, &(a, b)) in fabric.iter().enumerate() {
            let mut f = LinkFault::on(a, b);
            if self.loss > 0.0 {
                f = f.with_loss(self.loss_model());
            }
            if i == fabric.len() - 1 {
                if let Some((period, down_for)) = self.flap {
                    assert!(
                        down_for < period,
                        "flap outage must be shorter than its period"
                    );
                    let cycles = (deadline.as_u64() / period.as_u64()).max(1);
                    f = f.with_flap(FlapSchedule::periodic(
                        period,
                        down_for,
                        period,
                        u32::try_from(cycles).unwrap_or(u32::MAX),
                    ));
                }
            }
            if f.loss.is_some() || f.flap.is_some() {
                plan = plan.link(f);
            }
        }
        plan
    }
}

impl Scenario for FaultScenario {
    type Outcome = FaultResult;

    /// Run under the fault plan and build the slowdown table.
    fn run_with(&self, ctx: &RunCtx) -> FaultResult {
        let topo = self.fat_tree.build();
        let env = NetEnv::fat_tree(topo.base_rtt);
        let hosts = topo.hosts.clone();
        let drain_deadline = Nanos(self.horizon.as_u64() * 5);
        let faults = self.fault_plan(&topo, drain_deadline);

        let mut builder = topo.builder;
        if self.cc.needs_red() {
            builder.red_on_switches(netsim::RedConfig::dcqcn_100g());
        }
        // Backoff cap well below the watchdog window: a stalled-looking
        // flow that is merely waiting out its backed-off RTO must get a
        // retransmission attempt within every watchdog chunk.
        let rto_cap = Nanos::from_millis(1);
        let mut net = builder.build(
            NetConfig {
                seed: ctx.seed,
                faults,
                rto_backoff: RtoBackoff {
                    multiplier: 2,
                    cap: rto_cap,
                    jitter_frac: 0.1,
                },
                ..NetConfig::default()
            },
            MonitorConfig::default(),
        );
        install_tracer(&mut net, &self.cc, ctx);

        let dists: Vec<_> = self
            .workloads
            .iter()
            .map(|n| distributions::by_name(n).unwrap_or_else(|| panic!("unknown workload {n}")))
            .collect();
        let dist_refs: Vec<&workloads::EmpiricalCdf> = dists.iter().collect();
        let arrivals = mixed_arrivals(
            &ArrivalConfig {
                n_hosts: hosts.len(),
                host_rate: self.fat_tree.host_rate,
                load: self.load,
                horizon: self.horizon,
                seed: ctx.seed ^ 0xD15C0,
            },
            &dist_refs,
        );
        let n_flows = arrivals.len();
        for (i, f) in arrivals.iter().enumerate() {
            let cc = self
                .cc
                .build(&env, ctx.seed.wrapping_mul(31).wrapping_add(i as u64));
            net.add_flow(
                FlowSpec {
                    src: hosts[f.src],
                    dst: hosts[f.dst],
                    size: f.size,
                    start: f.start,
                },
                cc,
            );
        }

        let watchdog = default_watchdog(drain_deadline).max(Nanos(rto_cap.as_u64() * 5));
        let (mut net, outcome, events_handled, occupancy_hwm) =
            run_network(ctx.scheduler, net, drain_deadline, 20_000_000_000, watchdog);

        let completed = net.monitor.fcts().len();
        let mut raw: Vec<(u32, u64, f64)> = Vec::with_capacity(completed);
        let records: Vec<SlowdownRecord> = net
            .monitor
            .fcts()
            .iter()
            .map(|r| {
                // ideal_fct routes over the pristine (pre-fault) table,
                // so outages inflate the numerator only.
                let ideal = net.ideal_fct(r.flow);
                let slowdown = (r.fct().as_u64() as f64 / ideal.as_u64() as f64).max(1.0);
                raw.push((r.flow.0, r.size.as_u64(), slowdown));
                SlowdownRecord {
                    size: r.size.as_u64(),
                    slowdown,
                }
            })
            .collect();
        let table = SlowdownTable::build(records, 100, 99.9);
        FaultResult {
            label: self.cc.label(),
            table,
            n_flows,
            completed,
            raw,
            outcome,
            faults: net.fault_stats(),
            events_handled,
            occupancy_hwm,
            trace: finish_tracer(&mut net),
        }
    }
}

/// Output of one fault-injection run.
#[derive(Debug, Clone)]
pub struct FaultResult {
    /// Figure-legend label.
    pub label: String,
    /// Binned slowdown statistics (vs. pristine ideal FCTs).
    pub table: SlowdownTable,
    /// Flows offered.
    pub n_flows: usize,
    /// Flows completed before the drain deadline.
    pub completed: usize,
    /// Per-flow raw outcomes `(flow id, size, slowdown)`.
    pub raw: Vec<(u32, u64, f64)>,
    /// Structured run disposition from the stall watchdog.
    pub outcome: RunOutcome,
    /// Fault-subsystem counters (wire drops, link-down drops, reroutes,
    /// RTO firings).
    pub faults: FaultStats,
    /// Events the engine dispatched.
    pub events_handled: u64,
    /// Scheduler occupancy high-water mark (0 unless the `trace`
    /// feature is compiled in).
    pub occupancy_hwm: u64,
    /// Collected trace events and metrics; `None` when tracing was off.
    pub trace: Option<Tracer>,
}

/// Largest flow size still counted as "small" when summarizing long-flow
/// tails (the paper calls flows > 1 MB "long").
pub const LONG_FLOW_BYTES: u64 = 1_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ProtocolKind, Variant};
    use dcsim::Bytes;

    /// A tiny 4-1 incast end-to-end smoke test per protocol family.
    #[test]
    fn small_incast_completes_for_every_protocol() {
        for kind in [ProtocolKind::Hpcc, ProtocolKind::Swift, ProtocolKind::Dcqcn] {
            let sc = IncastScenario {
                incast: IncastConfig {
                    senders: 4,
                    flow_size: Bytes::from_kb(200),
                    flows_per_interval: 2,
                    interval: Nanos::from_micros(20),
                },
                cc: CcSpec::new(kind, Variant::Default),
                seed: 5,
                sample_interval: Nanos::from_micros(5),
                horizon: Nanos::from_millis(20),
                scheduler: SchedulerKind::default(),
            };
            let res = sc.run();
            assert!(res.all_finished, "{:?} did not finish", kind);
            assert_eq!(res.fcts.len(), 4);
            assert!(!res.jain.is_empty());
            assert!(!res.queue.is_empty());
        }
    }

    #[test]
    fn incast_vai_sf_finishes_and_is_fairer_than_default_hpcc() {
        let mk = |variant| {
            IncastScenario {
                incast: IncastConfig {
                    senders: 8,
                    flow_size: Bytes::from_kb(500),
                    flows_per_interval: 2,
                    interval: Nanos::from_micros(20),
                },
                cc: CcSpec::new(ProtocolKind::Hpcc, variant),
                seed: 3,
                sample_interval: Nanos::from_micros(5),
                horizon: Nanos::from_millis(20),
                scheduler: SchedulerKind::default(),
            }
            .run()
        };
        let default = mk(Variant::Default);
        let vai_sf = mk(Variant::VaiSf);
        assert!(default.all_finished && vai_sf.all_finished);
        // The paper's core claim at micro scale: the staggered flows
        // finish closer together under VAI+SF.
        assert!(
            vai_sf.finish_spread_us() < default.finish_spread_us(),
            "VAI SF spread {} should beat default {}",
            vai_sf.finish_spread_us(),
            default.finish_spread_us()
        );
    }

    #[test]
    fn convergence_time_semantics() {
        let res = IncastResult {
            label: "x".into(),
            jain: vec![
                (0.0, 0.5),
                (10.0, 0.96),
                (20.0, 0.7),
                (30.0, 0.97),
                (40.0, 0.99),
            ],
            queue: vec![(0.0, 100), (10.0, 50)],
            fcts: vec![],
            raw: vec![],
            all_finished: true,
            outcome: RunOutcome::Completed,
            events_handled: 0,
            occupancy_hwm: 0,
            trace: None,
        };
        // The dip at t=20 resets the clock; convergence is at t=30.
        assert_eq!(res.convergence_time(0.95), Some(30.0));
        assert_eq!(res.convergence_time(0.999), None);
        assert_eq!(res.peak_queue(), 100);
    }

    #[test]
    fn trace_replay_runs_a_permutation() {
        let arrivals = workloads::permutation(8, Bytes::from_kb(200), Nanos::ZERO, 3);
        let sc = TraceScenario {
            fat_tree: FatTreeConfig {
                pods: 2,
                tors_per_pod: 1,
                aggs_per_pod: 1,
                hosts_per_tor: 4,
                spines: 1,
                ..FatTreeConfig::reduced()
            },
            arrivals,
            cc: CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
            seed: 1,
            deadline: Nanos::from_millis(10),
            sample_interval: Some(Nanos::from_micros(10)),
            scheduler: SchedulerKind::default(),
        };
        let res = sc.run();
        assert!(res.all_finished);
        assert_eq!(res.fcts.len(), 8);
        assert_eq!(res.raw.len(), 8);
        assert!(!res.jain.is_empty());
        for &(_, _, s) in &res.raw {
            assert!(s >= 1.0);
        }
    }

    #[test]
    fn trace_replay_matches_saved_trace_roundtrip() {
        // Serialize a workload, parse it back, and verify the replay is
        // byte-identical to running the original list.
        let arrivals = workloads::permutation(6, Bytes::from_kb(100), Nanos::ZERO, 9);
        let json = workloads::to_json(&arrivals);
        let replayed = workloads::from_json(&json).expect("to_json output round-trips");
        let mk = |a: Vec<workloads::FlowArrival>| TraceScenario {
            fat_tree: FatTreeConfig {
                pods: 2,
                tors_per_pod: 1,
                aggs_per_pod: 1,
                hosts_per_tor: 3,
                spines: 1,
                ..FatTreeConfig::reduced()
            },
            arrivals: a,
            cc: CcSpec::new(ProtocolKind::Swift, Variant::VaiSf),
            seed: 4,
            deadline: Nanos::from_millis(10),
            sample_interval: None,
            scheduler: SchedulerKind::default(),
        };
        let a = mk(arrivals).run();
        let b = mk(replayed).run();
        assert_eq!(a.raw, b.raw);
    }

    #[test]
    fn run_with_matches_legacy_run_shim() {
        let sc = IncastScenario {
            incast: IncastConfig {
                senders: 4,
                flow_size: Bytes::from_kb(200),
                flows_per_interval: 2,
                interval: Nanos::from_micros(20),
            },
            // Probabilistic gating actually draws from the seeded
            // stream; the deterministic variants ignore the seed.
            cc: CcSpec::new(ProtocolKind::Hpcc, Variant::Probabilistic),
            seed: 11,
            sample_interval: Nanos::from_micros(5),
            horizon: Nanos::from_millis(20),
            scheduler: SchedulerKind::default(),
        };
        let legacy = sc.run();
        let ctx = RunCtx::new(11);
        let unified = sc.run_with(&ctx);
        assert_eq!(legacy.fcts, unified.fcts);
        assert_eq!(legacy.jain, unified.jain);
        // A different context seed must actually change the run.
        let reseeded = sc.run_with(&RunCtx::new(12));
        assert_ne!(legacy.fcts, reseeded.fcts);
    }

    #[test]
    fn incast_results_are_scheduler_invariant() {
        let mk = |scheduler| {
            IncastScenario {
                incast: IncastConfig {
                    senders: 4,
                    flow_size: Bytes::from_kb(200),
                    flows_per_interval: 2,
                    interval: Nanos::from_micros(20),
                },
                cc: CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
                seed: 7,
                sample_interval: Nanos::from_micros(5),
                horizon: Nanos::from_millis(20),
                scheduler,
            }
            .run()
        };
        let heap = mk(SchedulerKind::Heap);
        let wheel = mk(SchedulerKind::Wheel);
        assert!(heap.all_finished && wheel.all_finished);
        // Same seed, same dispatch contract: bit-identical outputs.
        assert_eq!(heap.fcts, wheel.fcts);
        assert_eq!(heap.jain, wheel.jain);
        assert_eq!(heap.queue, wheel.queue);
    }

    #[test]
    fn fault_scenario_with_no_knobs_matches_clean_run() {
        // loss = 0, no flap: the fault plan is empty, so the run must be
        // bit-identical to the plain DatacenterScenario (zero-cost-when-
        // off, end to end through the scenario layer).
        let workloads = vec![distributions::FB_HADOOP.to_string()];
        let cc = CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf);
        let clean = DatacenterScenario {
            horizon: Nanos::from_micros(300),
            ..DatacenterScenario::reduced(workloads.clone(), cc, 2)
        }
        .run();
        let faulty = FaultScenario {
            horizon: Nanos::from_micros(300),
            ..FaultScenario::reduced(workloads, cc, 2)
        };
        assert!(faulty
            .fault_plan(&faulty.fat_tree.build(), Nanos::from_millis(1))
            .is_empty());
        let res = faulty.run();
        assert_eq!(res.raw, clean.raw, "empty fault plan changed results");
        assert_eq!(res.faults, netsim::FaultStats::default());
        assert_eq!(res.outcome, clean.outcome);
    }

    #[test]
    fn fault_scenario_survives_loss_and_flaps() {
        let sc = FaultScenario {
            horizon: Nanos::from_micros(300),
            ..FaultScenario::reduced(
                vec![distributions::FB_HADOOP.to_string()],
                CcSpec::new(ProtocolKind::Hpcc, Variant::VaiSf),
                2,
            )
        }
        .with_loss(1e-3)
        .with_flap(Nanos::from_micros(200), Nanos::from_micros(40));
        let res = sc.run();
        assert!(res.n_flows > 0);
        assert!(res.completed > 0, "no flows completed under faults");
        // The injected faults actually fired.
        assert!(res.faults.reroutes >= 2, "flap produced no reroutes");
        assert!(
            res.faults.wire_drops + res.faults.link_down_drops > 0,
            "no packets were harmed"
        );
        for &(_, _, s) in &res.raw {
            assert!(s >= 1.0);
        }
    }

    #[test]
    fn fault_scenario_is_scheduler_invariant() {
        let mk = |scheduler| {
            FaultScenario {
                horizon: Nanos::from_micros(300),
                ..FaultScenario::reduced(
                    vec![distributions::FB_HADOOP.to_string()],
                    CcSpec::new(ProtocolKind::Swift, Variant::VaiSf),
                    7,
                )
            }
            .with_loss(5e-3)
            .with_bursty()
            .with_flap(Nanos::from_micros(250), Nanos::from_micros(50))
            .with_scheduler(scheduler)
            .run()
        };
        let heap = mk(SchedulerKind::Heap);
        let wheel = mk(SchedulerKind::Wheel);
        assert_eq!(heap.raw, wheel.raw);
        assert_eq!(heap.faults, wheel.faults);
        assert_eq!(heap.outcome, wheel.outcome);
    }

    #[test]
    fn tiny_datacenter_run_produces_slowdowns() {
        let sc = DatacenterScenario {
            fat_tree: FatTreeConfig {
                pods: 2,
                tors_per_pod: 1,
                aggs_per_pod: 1,
                hosts_per_tor: 4,
                spines: 1,
                ..FatTreeConfig::reduced()
            },
            workloads: vec![distributions::FB_HADOOP.to_string()],
            load: 0.3,
            horizon: Nanos::from_micros(300),
            cc: CcSpec::new(ProtocolKind::Hpcc, Variant::Default),
            seed: 2,
            scheduler: SchedulerKind::default(),
        };
        let res = sc.run();
        assert!(res.n_flows > 0);
        assert!(res.completed > 0, "no flows completed");
        assert!(!res.table.points.is_empty());
        for p in &res.table.points {
            assert!(p.tail >= 1.0 - 1e-6, "slowdown below 1: {}", p.tail);
            assert!(p.median <= p.tail + 1e-9);
        }
    }
}
