//! Machine-readable result summaries.
//!
//! The `repro` binary's `--json` mode emits these records so downstream
//! plotting (matplotlib, gnuplot, spreadsheets) can consume experiment
//! output without scraping text tables.

use minijson::{arr, obj, Value};

use crate::scenarios::{DatacenterResult, IncastResult, LONG_FLOW_BYTES};

/// Payloads that can render themselves as a JSON tree.
pub trait ToJson {
    /// Build the JSON value for this payload.
    fn to_value(&self) -> Value;
}

/// Scalar summary of one incast run.
#[derive(Debug, Clone, PartialEq)]
pub struct IncastSummary {
    /// Figure-legend label.
    pub label: String,
    /// Time (µs) to converge to Jain ≥ 0.9 and stay there.
    pub converge_us_at_0_9: Option<f64>,
    /// ∫(1 − J) dt over the run, µs.
    pub unfairness_integral: f64,
    /// Peak bottleneck queue, bytes.
    pub peak_queue_bytes: u64,
    /// Mean bottleneck queue, bytes.
    pub mean_queue_bytes: f64,
    /// Last-minus-first completion, µs.
    pub finish_spread_us: f64,
    /// Whether every flow completed.
    pub all_finished: bool,
    /// `(start µs, finish µs)` per flow, start-ordered.
    pub start_finish_us: Vec<(f64, f64)>,
}

impl From<&IncastResult> for IncastSummary {
    fn from(r: &IncastResult) -> Self {
        IncastSummary {
            label: r.label.clone(),
            converge_us_at_0_9: r.convergence_time(0.9),
            unfairness_integral: r.unfairness_integral(),
            peak_queue_bytes: r.peak_queue(),
            mean_queue_bytes: r.mean_queue(),
            finish_spread_us: r.finish_spread_us(),
            all_finished: r.all_finished,
            start_finish_us: r.start_finish(),
        }
    }
}

impl ToJson for IncastSummary {
    fn to_value(&self) -> Value {
        obj([
            ("label", Value::from(self.label.as_str())),
            ("converge_us_at_0_9", Value::from(self.converge_us_at_0_9)),
            ("unfairness_integral", Value::from(self.unfairness_integral)),
            ("peak_queue_bytes", Value::from(self.peak_queue_bytes)),
            ("mean_queue_bytes", Value::from(self.mean_queue_bytes)),
            ("finish_spread_us", Value::from(self.finish_spread_us)),
            ("all_finished", Value::from(self.all_finished)),
            (
                "start_finish_us",
                arr(self
                    .start_finish_us
                    .iter()
                    .map(|(s, f)| arr([*s, *f]))
                    .collect::<Vec<_>>()),
            ),
        ])
    }
}

/// One slowdown bin in a datacenter summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownBin {
    /// Largest flow size in the bin, bytes.
    pub size: u64,
    /// Tail-percentile slowdown (99.9% by default).
    pub tail: f64,
    /// Median slowdown.
    pub median: f64,
}

impl ToJson for SlowdownBin {
    fn to_value(&self) -> Value {
        obj([
            ("size", Value::from(self.size)),
            ("tail", Value::from(self.tail)),
            ("median", Value::from(self.median)),
        ])
    }
}

/// Scalar summary of one datacenter run.
#[derive(Debug, Clone, PartialEq)]
pub struct DatacenterSummary {
    /// Figure-legend label.
    pub label: String,
    /// Flows offered.
    pub n_flows: usize,
    /// Flows completed before the drain deadline.
    pub completed: usize,
    /// Mean tail slowdown over bins with size > 1 MB.
    pub long_flow_tail_mean: Option<f64>,
    /// All bins, size-ascending.
    pub bins: Vec<SlowdownBin>,
}

impl From<&DatacenterResult> for DatacenterSummary {
    fn from(r: &DatacenterResult) -> Self {
        DatacenterSummary {
            label: r.label.clone(),
            n_flows: r.n_flows,
            completed: r.completed,
            long_flow_tail_mean: r.table.mean_tail_above(LONG_FLOW_BYTES),
            bins: r
                .table
                .points
                .iter()
                .map(|p| SlowdownBin {
                    size: p.size,
                    tail: p.tail,
                    median: p.median,
                })
                .collect(),
        }
    }
}

impl ToJson for DatacenterSummary {
    fn to_value(&self) -> Value {
        obj([
            ("label", Value::from(self.label.as_str())),
            ("n_flows", Value::from(self.n_flows)),
            ("completed", Value::from(self.completed)),
            ("long_flow_tail_mean", Value::from(self.long_flow_tail_mean)),
            (
                "bins",
                Value::Arr(self.bins.iter().map(ToJson::to_value).collect()),
            ),
        ])
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_value).collect())
    }
}

/// Serialize any figure payload to pretty JSON.
pub fn to_json<T: ToJson>(value: &T) -> String {
    value.to_value().pretty()
}

/// Serialize a figure payload together with a traced run's metrics
/// registry: `{"summary": ..., "metrics": {"counters": ..., "histograms":
/// ...}}`. This is what the harness writes next to trace files so the
/// counters land beside the numbers they explain.
pub fn to_json_with_metrics<T: ToJson>(value: &T, tracer: &simtrace::Tracer) -> String {
    obj([
        ("summary", value.to_value()),
        ("metrics", tracer.metrics().to_value()),
    ])
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::Bytes;
    use metrics::{SlowdownRecord, SlowdownTable};

    fn incast_result() -> IncastResult {
        IncastResult {
            label: "HPCC".into(),
            jain: vec![(0.0, 0.5), (10.0, 0.95), (20.0, 1.0)],
            queue: vec![(0.0, 100), (10.0, 50)],
            fcts: vec![netsim::FctRecord {
                flow: netsim::FlowId(0),
                size: Bytes(1000),
                start: dcsim::Nanos(0),
                finish: dcsim::Nanos(5_000),
            }],
            raw: vec![(0, 1000, 1.25)],
            all_finished: true,
            outcome: netsim::RunOutcome::Completed,
            events_handled: 0,
            occupancy_hwm: 0,
            trace: None,
        }
    }

    #[test]
    fn incast_summary_roundtrips_to_json() {
        let s = IncastSummary::from(&incast_result());
        assert_eq!(s.label, "HPCC");
        assert_eq!(s.peak_queue_bytes, 100);
        assert_eq!(s.converge_us_at_0_9, Some(10.0));
        let json = to_json(&s);
        assert!(json.contains("\"label\": \"HPCC\""));
        assert!(json.contains("\"all_finished\": true"));
        // Valid JSON (parse back).
        let v = minijson::Value::parse(&json).expect("exporter emits valid JSON");
        assert_eq!(v["peak_queue_bytes"].as_u64(), Some(100));
    }

    #[test]
    fn metrics_ride_along_with_the_summary() {
        let mut tracer = simtrace::Tracer::new(simtrace::TraceConfig::counters());
        tracer.metrics_mut().counter_add("net.flows", 3);
        let s = IncastSummary::from(&incast_result());
        let json = to_json_with_metrics(&s, &tracer);
        let v = minijson::Value::parse(&json).expect("exporter emits valid JSON");
        assert_eq!(v["summary"]["label"].as_str(), Some("HPCC"));
        assert_eq!(v["metrics"]["counters"]["net.flows"].as_u64(), Some(3));
    }

    #[test]
    fn datacenter_summary_includes_bins() {
        let table = SlowdownTable::build(
            vec![
                SlowdownRecord {
                    size: 1_000,
                    slowdown: 2.0,
                },
                SlowdownRecord {
                    size: 2_000_000,
                    slowdown: 10.0,
                },
            ],
            2,
            99.9,
        );
        let r = DatacenterResult {
            label: "Swift".into(),
            table,
            n_flows: 2,
            completed: 2,
            raw: vec![(0, 1_000, 2.0), (1, 2_000_000, 10.0)],
            outcome: netsim::RunOutcome::Completed,
            events_handled: 0,
            occupancy_hwm: 0,
            trace: None,
        };
        let s = DatacenterSummary::from(&r);
        assert_eq!(s.bins.len(), 2);
        assert_eq!(s.long_flow_tail_mean, Some(10.0));
        let json = to_json(&s);
        let v = minijson::Value::parse(&json).expect("exporter emits valid JSON");
        assert_eq!(v["bins"][1]["size"].as_u64(), Some(2_000_000));
    }
}
