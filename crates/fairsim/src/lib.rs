//! `fairsim` — the experiment layer tying the simulator, protocols,
//! workloads, and metrics together into the paper's benchmarks.
//!
//! Everything here is driven by two scenario types:
//!
//! * [`scenarios::IncastScenario`] — the 16-1 / 96-1 staggered incast on a
//!   single-switch star (Figures 1-3, 5, 6, 8, 9);
//! * [`scenarios::DatacenterScenario`] — Poisson traffic from empirical
//!   flow-size distributions on the 3-layer fat-tree (Figures 10-13).
//!
//! A [`spec::CcSpec`] names a protocol (HPCC / Swift / DCQCN) and a
//! variant (default, high-AI, probabilistic, VAI, SF, VAI+SF), and builds
//! per-flow congestion-control instances from a [`spec::NetEnv`]
//! describing the topology's base RTT, line rate, and minimum BDP.
//!
//! `fairsim` is what the `repro` binary (in the `bench` crate) and the
//! workspace examples call into; it contains no figure-rendering logic of
//! its own beyond plain text/CSV tables ([`render`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod export;
pub mod render;
pub mod scenarios;
pub mod series;
pub mod spec;

pub use analysis::PairedComparison;
pub use export::{DatacenterSummary, IncastSummary};
pub use scenarios::{
    DatacenterResult, DatacenterScenario, FaultResult, FaultScenario, IncastResult, IncastScenario,
    RunCtx, Scenario, TraceResult, TraceScenario,
};
pub use spec::{CcOptions, CcSpec, NetEnv, ProtocolKind, Variant};

// The scheduler knob on every scenario comes from the engine crate; re-export
// it so harnesses can name it without depending on dcsim directly. Same for
// the observability configuration from simtrace.
pub use dcsim::SchedulerKind;
pub use simtrace::{Subsystem, TraceConfig, TraceLevel, Tracer};
