//! Derived figure series and cross-variant comparisons.

use crate::scenarios::IncastResult;

/// Downsample a `(x, y)` series to at most `n` evenly spaced points
/// (keeps first and last). Figures don't need every 5 µs sample.
pub fn thin<T: Copy>(series: &[T], n: usize) -> Vec<T> {
    if series.len() <= n || n < 2 {
        return series.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let idx = i * (series.len() - 1) / (n - 1);
        out.push(series[idx]);
    }
    out
}

/// Align several incast results into one Jain-index comparison table:
/// rows are sample times of the first result, columns are variants. Times
/// where a variant has no sample carry `None`.
pub fn jain_comparison(results: &[IncastResult]) -> Vec<(f64, Vec<Option<f64>>)> {
    let Some(first) = results.first() else {
        return Vec::new();
    };
    first
        .jain
        .iter()
        .map(|&(t, _)| {
            let row = results
                .iter()
                .map(|r| {
                    r.jain
                        .iter()
                        .find(|&&(rt, _)| (rt - t).abs() < 1e-6)
                        .map(|&(_, j)| j)
                })
                .collect();
            (t, row)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(jain: Vec<(f64, f64)>) -> IncastResult {
        IncastResult {
            label: "x".into(),
            jain,
            queue: vec![],
            fcts: vec![],
            raw: vec![],
            all_finished: true,
            outcome: netsim::RunOutcome::Completed,
            events_handled: 0,
            occupancy_hwm: 0,
            trace: None,
        }
    }

    #[test]
    fn thin_keeps_endpoints() {
        let s: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 0.0)).collect();
        let t = thin(&s, 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t[0].0, 0.0);
        assert_eq!(t[9].0, 99.0);
    }

    #[test]
    fn thin_short_series_untouched() {
        let s = vec![1, 2, 3];
        assert_eq!(thin(&s, 10), s);
    }

    #[test]
    fn comparison_aligns_on_first_result() {
        let a = res(vec![(0.0, 0.5), (5.0, 0.9)]);
        let b = res(vec![(0.0, 0.7)]);
        let rows = jain_comparison(&[a, b]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1, vec![Some(0.5), Some(0.7)]);
        assert_eq!(rows[1].1, vec![Some(0.9), None]);
    }

    #[test]
    fn empty_comparison() {
        assert!(jain_comparison(&[]).is_empty());
    }
}
