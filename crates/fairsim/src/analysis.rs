//! Paired statistical comparison of two protocol runs.
//!
//! Because the workload is seeded independently of the protocol, two
//! variants at the same seed see the *identical* flow list — so their
//! per-flow slowdowns can be compared pairwise, which is far more
//! sensitive than comparing marginal distributions: it answers "how many
//! individual flows got faster, and by how much" instead of "did the
//! histogram move".

/// Per-flow raw outcome: `(flow id, size bytes, slowdown)`.
pub type FlowOutcome = (u32, u64, f64);

/// Paired comparison of a baseline against a treatment.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedComparison {
    /// Flows present in both runs.
    pub n: usize,
    /// Fraction of flows whose slowdown improved (speedup > 1).
    pub frac_improved: f64,
    /// Geometric mean of per-flow speedups (baseline / treatment).
    pub geomean_speedup: f64,
    /// Same statistics restricted to flows larger than `long_cutoff`.
    pub long_n: usize,
    /// Fraction of long flows improved.
    pub long_frac_improved: f64,
    /// Geometric-mean speedup over long flows.
    pub long_geomean_speedup: f64,
}

impl PairedComparison {
    /// Compare `baseline` and `treatment` outcomes, pairing by flow id.
    /// Flows missing from either run (e.g. unfinished at the drain
    /// deadline) are skipped.
    pub fn compute(
        baseline: &[FlowOutcome],
        treatment: &[FlowOutcome],
        long_cutoff: u64,
    ) -> PairedComparison {
        use std::collections::BTreeMap;
        let t: BTreeMap<u32, (u64, f64)> = treatment
            .iter()
            .map(|&(id, size, s)| (id, (size, s)))
            .collect();
        let mut n = 0usize;
        let mut improved = 0usize;
        let mut log_sum = 0.0f64;
        let mut long_n = 0usize;
        let mut long_improved = 0usize;
        let mut long_log_sum = 0.0f64;
        for &(id, size, base_s) in baseline {
            let Some(&(t_size, treat_s)) = t.get(&id) else {
                continue;
            };
            debug_assert_eq!(size, t_size, "paired flows must agree on size");
            if base_s <= 0.0 || treat_s <= 0.0 {
                continue;
            }
            let speedup = base_s / treat_s;
            n += 1;
            improved += usize::from(speedup > 1.0);
            log_sum += speedup.ln();
            if size > long_cutoff {
                long_n += 1;
                long_improved += usize::from(speedup > 1.0);
                long_log_sum += speedup.ln();
            }
        }
        PairedComparison {
            n,
            frac_improved: if n > 0 {
                improved as f64 / n as f64
            } else {
                0.0
            },
            geomean_speedup: if n > 0 {
                (log_sum / n as f64).exp()
            } else {
                1.0
            },
            long_n,
            long_frac_improved: if long_n > 0 {
                long_improved as f64 / long_n as f64
            } else {
                0.0
            },
            long_geomean_speedup: if long_n > 0 {
                (long_log_sum / long_n as f64).exp()
            } else {
                1.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_by_id_and_computes_geomean() {
        let base = vec![(0u32, 1000u64, 4.0), (1, 2_000_000, 8.0), (2, 500, 2.0)];
        let treat = vec![(0u32, 1000u64, 2.0), (1, 2_000_000, 2.0), (2, 500, 4.0)];
        let c = PairedComparison::compute(&base, &treat, 1_000_000);
        assert_eq!(c.n, 3);
        // Speedups: 2, 4, 0.5 → geomean = (2*4*0.5)^(1/3) = 4^(1/3).
        assert!((c.geomean_speedup - 4.0f64.powf(1.0 / 3.0)).abs() < 1e-12);
        assert!((c.frac_improved - 2.0 / 3.0).abs() < 1e-12);
        // Long flows: only flow 1 (speedup 4).
        assert_eq!(c.long_n, 1);
        assert_eq!(c.long_frac_improved, 1.0);
        assert!((c.long_geomean_speedup - 4.0).abs() < 1e-12);
    }

    #[test]
    fn missing_flows_are_skipped() {
        let base = vec![(0u32, 1000u64, 4.0), (1, 1000, 4.0)];
        let treat = vec![(0u32, 1000u64, 2.0)];
        let c = PairedComparison::compute(&base, &treat, 1_000_000);
        assert_eq!(c.n, 1);
        assert_eq!(c.long_n, 0);
        assert_eq!(c.long_geomean_speedup, 1.0);
    }

    #[test]
    fn empty_inputs_are_neutral() {
        let c = PairedComparison::compute(&[], &[], 0);
        assert_eq!(c.n, 0);
        assert_eq!(c.geomean_speedup, 1.0);
    }

    #[test]
    fn identical_runs_give_unity() {
        let base = vec![(0u32, 1000u64, 3.0), (1, 2000, 5.0)];
        let c = PairedComparison::compute(&base, &base, 0);
        assert_eq!(c.frac_improved, 0.0); // strict improvement only
        assert!((c.geomean_speedup - 1.0).abs() < 1e-12);
    }
}
