//! `cc-swift` — Swift: delay-based datacenter congestion control (Kumar et
//! al., SIGCOMM 2020), plus the fairness paper's modifications.
//!
//! Swift compares each ACK's measured round-trip delay against a *target
//! delay* and reacts:
//!
//! * `delay < target` → additive increase (`ai/cwnd` per ACK, i.e. ~`ai`
//!   per RTT), and
//! * `delay ≥ target` → multiplicative decrease by
//!   `mdf = max(1 − β·(delay−target)/delay, max_mdf)` — Equation 1 of the
//!   fairness paper — at most once per round-trip time.
//!
//! The target is not fixed: **topology-based scaling** adds a per-hop term
//! and **flow-based scaling (FBS)** raises the target for flows with small
//! windows (Swift's own fairness aid, which the paper shows is
//! insufficient for long-flow tails).
//!
//! # The fairness paper's modifications (Sections III-D and V)
//!
//! * flows start at line rate (RDMA convention);
//! * a **reference window** (borrowed from HPCC) so per-ACK decreases do
//!   not compound within an update period — required for Sampling
//!   Frequency;
//! * optionally **always-AI**: an additive increase applied on every
//!   update, even decreases, so Variable-AI tokens are always spent;
//! * the "Swift VAI SF" variant disables FBS (VAI + SF replace it) which
//!   also lowers the tolerated queueing delay;
//! * "Swift 1Gbps" (high AI) and "Swift Probabilistic" baselines mirror
//!   the HPCC ones.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use dcsim::{BitRate, DetRng, Nanos};
use faircc::{
    AckFeedback, CcMode, CcSnapshot, CongestionControl, MetricsRegistry, ProbabilisticGate,
    SamplingFrequency, SenderLimits, SfConfig, VaiConfig, VariableAi,
};

/// Flow-based scaling parameters (Swift §4.3).
#[derive(Debug, Clone, Copy)]
pub struct FbsConfig {
    /// Window (packets) above which no scaling applies (`fs_max_cwnd`;
    /// the paper uses 100 on the fat-tree, 50 on the incast star).
    pub max_cwnd: f64,
    /// Window floor for scaling (`fs_min_cwnd`, Swift default 0.1).
    pub min_cwnd: f64,
    /// Maximum extra target delay the scaling may add (`fs_range`).
    pub range: Nanos,
}

impl FbsConfig {
    /// Swift-paper-style defaults for a given topology scale.
    pub fn with_max_cwnd(max_cwnd: f64) -> Self {
        FbsConfig {
            max_cwnd,
            min_cwnd: 0.1,
            // fs_range: a few microseconds of tolerated extra queueing for
            // tiny windows; we use 5 us, on the order of the base target.
            range: Nanos::from_micros(5),
        }
    }

    /// The FBS additive target term for a window of `cwnd` packets:
    /// `clamp(α/√cwnd + β, 0, range)` with α, β chosen so the term spans
    /// exactly `[0, range]` over `[min_cwnd, max_cwnd]`.
    pub fn term(&self, cwnd: f64) -> Nanos {
        let alpha =
            self.range.as_u64() as f64 / (1.0 / self.min_cwnd.sqrt() - 1.0 / self.max_cwnd.sqrt());
        let beta = -alpha / self.max_cwnd.sqrt();
        let cwnd = cwnd.max(self.min_cwnd);
        let raw = alpha / cwnd.sqrt() + beta;
        Nanos::from_ns_f64(raw.clamp(0.0, self.range.as_u64() as f64))
    }
}

/// Hyper additive increase, borrowed from Timely (Mittal et al.,
/// SIGCOMM 2015) — the extension the fairness paper suggests in its
/// evaluation: "Swift may benefit from a hyper additive increase setting
/// like in Timely, which can help grab available bandwidth."
///
/// After `consecutive_needed` whole RTTs without any congestion signal,
/// the additive increase is multiplied by `1 + step · extra_rtts`, capped
/// at `max_multiplier`. Any congested ACK resets the streak, so HAI only
/// accelerates recovery into genuinely idle bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct HyperAiConfig {
    /// Uncongested RTTs required before HAI engages (Timely uses 5).
    pub consecutive_needed: u32,
    /// AI multiplier growth per additional uncongested RTT.
    pub step: f64,
    /// Upper bound on the AI multiplier.
    pub max_multiplier: f64,
}

impl HyperAiConfig {
    /// Timely-flavoured defaults.
    pub fn timely_default() -> Self {
        HyperAiConfig {
            consecutive_needed: 5,
            step: 1.0,
            max_multiplier: 20.0,
        }
    }

    /// The AI multiplier for a streak of `consecutive` uncongested RTTs.
    pub fn multiplier(&self, consecutive: u32) -> f64 {
        if consecutive < self.consecutive_needed {
            1.0
        } else {
            (1.0 + self.step * (consecutive - self.consecutive_needed + 1) as f64)
                .min(self.max_multiplier)
        }
    }
}

/// Tunables for one Swift flow.
#[derive(Debug, Clone)]
pub struct SwiftConfig {
    /// Base (uncongested) round-trip time, used for pacing.
    pub base_rtt: Nanos,
    /// Sender NIC line rate (window cap = line-rate BDP).
    pub line_rate: BitRate,
    /// MTU in bytes (windows are counted in packets of this size).
    pub mtu: u32,
    /// Base target delay (paper: 5 µs).
    pub base_target: Nanos,
    /// Per-switch-hop target increment (topology scaling; paper: 2 µs).
    pub hop_scale: Nanos,
    /// Multiplicative-decrease sensitivity β (paper: 0.8).
    pub beta: f64,
    /// Floor of the decrease factor (paper: max mdf 0.5 ⇒ factor ≥ 0.5).
    pub max_mdf: f64,
    /// Additive increase in packets per RTT (derived from an AI rate).
    pub ai_pkts: f64,
    /// Flow-based scaling (None in the VAI SF variant).
    pub fbs: Option<FbsConfig>,
    /// Apply the additive increase on decreases too (paper's HPCC-inspired
    /// Swift change; enabled in the VAI SF variant).
    pub always_ai: bool,
    /// Variable AI (None = stock Swift).
    pub vai: Option<VaiConfig>,
    /// Sampling Frequency (None = per-RTT decreases).
    pub sf: Option<SfConfig>,
    /// Probabilistic-feedback baseline.
    pub probabilistic: bool,
    /// Timely-style hyper additive increase (None = stock Swift).
    pub hyper_ai: Option<HyperAiConfig>,
}

/// Additive increase in packets/RTT for an AI *rate*.
pub fn ai_pkts(ai_rate: BitRate, base_rtt: Nanos, mtu: u32) -> f64 {
    ai_rate.as_f64() * base_rtt.as_secs_f64() / 8.0 / mtu as f64
}

impl SwiftConfig {
    /// The paper's Swift defaults: AI = 50 Mbps, β = 0.8, max mdf 0.5,
    /// base target 5 µs + 2 µs/hop, FBS with the given max scaling window.
    pub fn paper_default(base_rtt: Nanos, line_rate: BitRate, fbs_max_cwnd: f64) -> Self {
        SwiftConfig {
            base_rtt,
            line_rate,
            mtu: 1000,
            base_target: Nanos::from_micros(5),
            hop_scale: Nanos::from_micros(2),
            beta: 0.8,
            max_mdf: 0.5,
            ai_pkts: ai_pkts(BitRate::from_mbps(50), base_rtt, 1000),
            fbs: Some(FbsConfig::with_max_cwnd(fbs_max_cwnd)),
            always_ai: false,
            vai: None,
            sf: None,
            probabilistic: false,
            hyper_ai: None,
        }
    }

    /// The "Swift 1Gbps" high-AI baseline.
    pub fn high_ai(base_rtt: Nanos, line_rate: BitRate, fbs_max_cwnd: f64) -> Self {
        SwiftConfig {
            ai_pkts: ai_pkts(BitRate::from_gbps(1), base_rtt, 1000),
            ..Self::paper_default(base_rtt, line_rate, fbs_max_cwnd)
        }
    }

    /// The "Swift Probabilistic" baseline.
    pub fn probabilistic(base_rtt: Nanos, line_rate: BitRate, fbs_max_cwnd: f64) -> Self {
        SwiftConfig {
            probabilistic: true,
            ..Self::paper_default(base_rtt, line_rate, fbs_max_cwnd)
        }
    }

    /// The paper's "Swift VAI SF": no FBS, always-AI, Variable AI with one
    /// token per 30 ns of delay and Token_Thresh = target + min-BDP delay
    /// (4 µs at 100 Gbps for 50 KB), Sampling Frequency s = 30.
    pub fn vai_sf(base_rtt: Nanos, line_rate: BitRate, hops: u8) -> Self {
        let base = Self::paper_default(base_rtt, line_rate, 50.0);
        let static_target = base.base_target + base.hop_scale * hops as u64;
        let thresh_ns = static_target.as_u64() as f64 + 4_000.0;
        SwiftConfig {
            fbs: None,
            always_ai: true,
            vai: Some(VaiConfig::swift_default(thresh_ns)),
            sf: Some(SfConfig::paper_default()),
            ..base
        }
    }

    /// Line-rate window in packets.
    pub fn max_cwnd_pkts(&self) -> f64 {
        self.line_rate.bdp(self.base_rtt).as_f64() / self.mtu as f64
    }
}

/// One flow's Swift state.
pub struct Swift {
    cfg: SwiftConfig,
    name: String,
    /// Current congestion window, in packets (may be fractional).
    cwnd: f64,
    /// Reference window for the paper's non-compounding decrease scheme.
    ref_cwnd: f64,
    /// Time of the last committed decrease (per-RTT gating).
    last_decrease: Nanos,
    /// Most recent RTT measurement (the per-RTT gate interval).
    last_rtt: Nanos,
    /// Time the current RTT accounting period started (VAI boundary).
    rtt_mark: Nanos,
    /// Consecutive fully-uncongested RTTs (hyper-AI streak).
    clear_rtts: u32,
    /// Whether any ACK this RTT reported delay >= target.
    congested_this_rtt: bool,
    vai: Option<VariableAi>,
    sf: Option<SamplingFrequency>,
    prob: Option<ProbabilisticGate>,
}

impl Swift {
    /// Create a flow starting at line rate (paper: "we start flows at line
    /// rate in Swift to fit with other RDMA congestion control protocols").
    pub fn new(cfg: SwiftConfig, rng: DetRng) -> Self {
        let cwnd0 = cfg.max_cwnd_pkts();
        let vai = cfg.vai.map(VariableAi::new);
        let sf = cfg.sf.map(SamplingFrequency::new);
        let prob = cfg
            .probabilistic
            .then(|| ProbabilisticGate::new(cwnd0, rng));
        let name = match (&vai, &sf, &prob) {
            (Some(_), Some(_), _) => "Swift VAI SF",
            (Some(_), None, _) => "Swift VAI",
            (None, Some(_), _) => "Swift SF",
            (None, None, Some(_)) => "Swift Probabilistic",
            (None, None, None) => "Swift",
        }
        .to_string();
        Swift {
            cfg,
            name,
            cwnd: cwnd0,
            ref_cwnd: cwnd0,
            last_decrease: Nanos::ZERO,
            last_rtt: Nanos::ZERO,
            rtt_mark: Nanos::ZERO,
            clear_rtts: 0,
            congested_this_rtt: false,
            vai,
            sf,
            prob,
        }
    }

    /// The current hyper-AI streak length (for tests/instrumentation).
    pub fn clear_rtts(&self) -> u32 {
        self.clear_rtts
    }

    /// Current window, in packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Reference window, in packets.
    pub fn ref_cwnd(&self) -> f64 {
        self.ref_cwnd
    }

    /// The target delay for the current state: base + per-hop topology
    /// scaling + flow-based scaling.
    pub fn target_delay(&self, hops: u8) -> Nanos {
        let mut t = self.cfg.base_target + self.cfg.hop_scale * hops as u64;
        if let Some(fbs) = &self.cfg.fbs {
            t += fbs.term(self.cwnd);
        }
        t
    }

    fn effective_ai(&mut self, spend: bool) -> f64 {
        match &mut self.vai {
            Some(vai) => self.cfg.ai_pkts * vai.ai_multiplier(spend),
            None => self.cfg.ai_pkts,
        }
    }

    fn clamp(&mut self) {
        let max = self.cfg.max_cwnd_pkts();
        self.cwnd = self.cwnd.clamp(0.001, max);
        self.ref_cwnd = self.ref_cwnd.clamp(0.001, max);
    }
}

impl CongestionControl for Swift {
    fn on_ack(&mut self, fb: &AckFeedback) {
        let delay = fb.rtt;
        let target = self.target_delay(fb.hops);
        let congested = delay >= target;

        // VAI: congestion measure is the raw delay; tokens mint when it
        // exceeds target + BDP-delay (encoded in the config threshold).
        if let Some(vai) = &mut self.vai {
            vai.observe(delay.as_u64() as f64, congested);
        }
        // RTT accounting boundary for VAI and hyper-AI (time-based: one
        // measured RTT).
        self.congested_this_rtt |= congested;
        let rtt_boundary =
            fb.now.saturating_sub(self.rtt_mark) >= self.last_rtt && self.last_rtt > Nanos::ZERO;
        if rtt_boundary {
            self.rtt_mark = fb.now;
            if let Some(vai) = &mut self.vai {
                vai.on_rtt_end();
            }
            if self.congested_this_rtt {
                self.clear_rtts = 0;
            } else {
                self.clear_rtts = self.clear_rtts.saturating_add(1);
            }
            self.congested_this_rtt = false;
        }

        let sf_boundary = self.sf.as_mut().map(|sf| sf.on_ack()).unwrap_or(false);
        let acked_pkts = (fb.acked.as_u64() as f64 / self.cfg.mtu as f64).max(1.0);

        if !congested {
            // Additive increase, normalized so it sums to ~ai per RTT;
            // scaled up by the Timely-style hyper-AI multiplier when the
            // path has been congestion-free for several RTTs.
            let hai = self
                .cfg
                .hyper_ai
                .map(|h| h.multiplier(self.clear_rtts))
                .unwrap_or(1.0);
            let ai = self.effective_ai(rtt_boundary) * hai;
            if self.cwnd >= 1.0 {
                self.cwnd += ai * acked_pkts / self.cwnd;
            } else {
                self.cwnd += ai * acked_pkts;
            }
            self.ref_cwnd = self.cwnd;
        } else {
            // Multiplicative decrease from the *reference* window
            // (Equation 1), committed per RTT (stock) or per sampling
            // period (SF), with per-ACK non-compounding adjustments in
            // between when the reference scheme is active.
            let mdf = (1.0
                - self.cfg.beta * (delay.as_u64() as f64 - target.as_u64() as f64)
                    / delay.as_u64() as f64)
                .max(self.cfg.max_mdf);
            let commit = if self.sf.is_some() {
                sf_boundary
            } else {
                fb.now.saturating_sub(self.last_decrease) >= self.last_rtt
            };
            if commit {
                let use_it = match &mut self.prob {
                    Some(gate) => {
                        let r = self.ref_cwnd;
                        gate.should_use(r)
                    }
                    None => true,
                };
                if use_it {
                    let ai = if self.cfg.always_ai {
                        self.effective_ai(true)
                    } else {
                        0.0
                    };
                    self.cwnd = self.ref_cwnd * mdf + ai;
                    self.ref_cwnd = self.cwnd;
                    self.last_decrease = fb.now;
                }
            } else if self.sf.is_some() {
                // Per-ACK adjustment from the unchanged reference: several
                // congested ACKs inside one period do not compound.
                self.cwnd = self.ref_cwnd * mdf;
            }
        }
        // The per-RTT gate uses the *previous* RTT estimate, so a single
        // inflated outlier cannot block its own decrease.
        self.last_rtt = fb.rtt;
        self.clamp();
    }

    fn on_rto(&mut self, now: Nanos) {
        // Retransmission timeout: apply Swift's maximum multiplicative
        // decrease from the reference window and reset the hyper-AI
        // clear-path streak — the path is anything but clear.
        self.cwnd = self.ref_cwnd * self.cfg.max_mdf;
        self.ref_cwnd = self.cwnd;
        self.last_decrease = now;
        self.clear_rtts = 0;
        self.congested_this_rtt = true;
        self.clamp();
    }

    fn limits(&self) -> SenderLimits {
        SenderLimits::windowed(self.cwnd * self.cfg.mtu as f64, self.cfg.base_rtt)
    }

    fn mode(&self) -> CcMode {
        CcMode::Window
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn snapshot(&self) -> CcSnapshot {
        let l = self.limits();
        CcSnapshot {
            window_bytes: l.window_bytes,
            rate: l.pacing,
            vai_bank: self.vai.as_ref().map_or(0.0, VariableAi::bank),
        }
    }

    fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        reg.histogram_record_f64("cc.swift.cwnd_pkts", self.cwnd);
        if let Some(vai) = &self.vai {
            reg.histogram_record_f64("cc.swift.vai_bank", vai.bank());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::Bytes;

    const RTT: Nanos = Nanos(5_000);
    const LINE: BitRate = BitRate(100_000_000_000);

    fn swift(cfg: SwiftConfig) -> Swift {
        Swift::new(cfg, DetRng::new(3))
    }

    fn ack(now: Nanos, rtt: Nanos) -> AckFeedback {
        AckFeedback {
            now,
            rtt,
            ecn: false,
            int: Default::default(),
            acked: Bytes(1000),
            hops: 1,
        }
    }

    #[test]
    fn starts_at_line_rate() {
        let s = swift(SwiftConfig::paper_default(RTT, LINE, 50.0));
        // 100 Gbps * 5 us = 62.5 KB = 62.5 packets.
        assert!((s.cwnd() - 62.5).abs() < 1e-9);
        assert_eq!(s.limits().pacing, LINE);
    }

    #[test]
    fn ai_rate_conversion() {
        // 50 Mbps * 5 us / 8 = 31.25 B = 0.03125 packets.
        assert!((ai_pkts(BitRate::from_mbps(50), RTT, 1000) - 0.03125).abs() < 1e-12);
    }

    #[test]
    fn low_delay_grows_additively() {
        let mut s = swift(SwiftConfig::paper_default(RTT, LINE, 50.0));
        s.cwnd = 10.0;
        s.ref_cwnd = 10.0;
        let before = s.cwnd();
        let mut now = Nanos(0);
        // 10 ACKs (one cwnd's worth = one RTT of ACKs) below target.
        for _ in 0..10 {
            now += Nanos(500);
            s.on_ack(&ack(now, Nanos(4_000))); // below 5+2 us target
        }
        let growth = s.cwnd() - before;
        // ~ai per RTT: 10 acks * ai/cwnd each ≈ 0.03 packets total.
        assert!(growth > 0.0);
        assert!(
            (growth - s.cfg.ai_pkts).abs() < s.cfg.ai_pkts * 0.2,
            "growth {growth} vs ai {}",
            s.cfg.ai_pkts
        );
    }

    #[test]
    fn sub_unity_window_grows_without_normalization() {
        let mut s = swift(SwiftConfig::paper_default(RTT, LINE, 50.0));
        s.cwnd = 0.5;
        s.ref_cwnd = 0.5;
        s.on_ack(&ack(Nanos(1000), Nanos(4_000)));
        assert!((s.cwnd() - 0.5 - s.cfg.ai_pkts).abs() < 1e-9);
    }

    #[test]
    fn decrease_respects_mdf_floor() {
        let mut s = swift(SwiftConfig::paper_default(RTT, LINE, 50.0));
        s.cwnd = 40.0;
        s.ref_cwnd = 40.0;
        s.last_rtt = RTT;
        // Enormous delay: raw mdf would be ~1-0.8 = 0.2, floor is 0.5.
        s.on_ack(&ack(Nanos(100_000), Nanos(500_000)));
        assert!((s.cwnd() - 20.0).abs() < 1.0, "cwnd {}", s.cwnd());
    }

    #[test]
    fn decrease_scales_with_congestion_severity() {
        // Mild overshoot: delay 8 us vs 7 us target -> mdf = 1-0.8*(1/8) = 0.9.
        let mut s = swift(SwiftConfig {
            fbs: None,
            ..SwiftConfig::paper_default(RTT, LINE, 50.0)
        });
        s.cwnd = 40.0;
        s.ref_cwnd = 40.0;
        s.last_rtt = RTT;
        s.on_ack(&ack(Nanos(100_000), Nanos(8_000)));
        assert!((s.cwnd() - 36.0).abs() < 0.01, "cwnd {}", s.cwnd());
    }

    #[test]
    fn only_one_decrease_per_rtt() {
        let mut s = swift(SwiftConfig {
            fbs: None,
            ..SwiftConfig::paper_default(RTT, LINE, 50.0)
        });
        s.cwnd = 40.0;
        s.ref_cwnd = 40.0;
        s.last_rtt = RTT;
        s.on_ack(&ack(Nanos(100_000), Nanos(8_000)));
        let after_first = s.cwnd();
        // More congested ACKs inside the same RTT: no further decrease.
        for i in 1..5 {
            s.on_ack(&ack(Nanos(100_000 + i * 500), Nanos(8_000)));
        }
        assert_eq!(s.cwnd(), after_first);
        // After a full RTT, the next congested ACK decreases again.
        s.on_ack(&ack(Nanos(100_000) + RTT + Nanos(8_000), Nanos(8_000)));
        assert!(s.cwnd() < after_first);
    }

    #[test]
    fn sf_decreases_every_s_acks_from_reference() {
        let mut s = swift(SwiftConfig {
            sf: Some(SfConfig {
                acks_per_decrease: 4,
            }),
            fbs: None,
            ..SwiftConfig::paper_default(RTT, LINE, 50.0)
        });
        s.cwnd = 40.0;
        s.ref_cwnd = 40.0;
        s.last_rtt = RTT;
        // delay 14us vs 7us target: mdf = 1-0.8*0.5 = 0.6.
        let mut now = Nanos(0);
        let mut commits = 0;
        let mut last_ref = s.ref_cwnd();
        for _ in 0..8 {
            now += Nanos(100);
            s.on_ack(&ack(now, Nanos(14_000)));
            // Between commits, cwnd is ref*mdf but ref is unchanged.
            if (s.ref_cwnd() - last_ref).abs() > 1e-12 {
                commits += 1;
                last_ref = s.ref_cwnd();
            }
            assert!((s.cwnd() - s.ref_cwnd() * 0.6).abs() < 1e-9 || s.cwnd() == s.ref_cwnd());
        }
        assert_eq!(commits, 2, "8 ACKs at s=4 must commit exactly twice");
        // Two commits of 0.6 each: 40 * 0.36 = 14.4.
        assert!((s.ref_cwnd() - 14.4).abs() < 1e-6, "{}", s.ref_cwnd());
    }

    #[test]
    fn fbs_raises_target_for_small_windows() {
        let s = swift(SwiftConfig::paper_default(RTT, LINE, 50.0));
        let mut small = swift(SwiftConfig::paper_default(RTT, LINE, 50.0));
        small.cwnd = 0.5;
        let t_big = s.target_delay(1);
        let t_small = small.target_delay(1);
        assert!(
            t_small > t_big,
            "small window target {t_small} should exceed {t_big}"
        );
        // At max_cwnd the term is ~zero: target = base + hop scale.
        assert_eq!(t_big, Nanos::from_micros(5 + 2));
    }

    #[test]
    fn fbs_term_monotone_and_bounded() {
        let fbs = FbsConfig::with_max_cwnd(50.0);
        let mut last = Nanos::MAX;
        for c in [0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0] {
            let t = fbs.term(c);
            assert!(t <= fbs.range);
            assert!(t <= last, "FBS term must not increase with cwnd");
            last = t;
        }
        assert_eq!(fbs.term(50.0), Nanos(0));
        assert_eq!(fbs.term(0.1), fbs.range);
    }

    #[test]
    fn topology_scaling_adds_per_hop() {
        let s = swift(SwiftConfig {
            fbs: None,
            ..SwiftConfig::paper_default(RTT, LINE, 50.0)
        });
        assert_eq!(s.target_delay(1), Nanos::from_micros(7));
        assert_eq!(s.target_delay(5), Nanos::from_micros(15));
    }

    #[test]
    fn always_ai_adds_on_decrease() {
        let mut with = swift(SwiftConfig {
            always_ai: true,
            fbs: None,
            ai_pkts: 2.0, // exaggerate for visibility
            ..SwiftConfig::paper_default(RTT, LINE, 50.0)
        });
        let mut without = swift(SwiftConfig {
            fbs: None,
            ai_pkts: 2.0,
            ..SwiftConfig::paper_default(RTT, LINE, 50.0)
        });
        for s in [&mut with, &mut without] {
            s.cwnd = 40.0;
            s.ref_cwnd = 40.0;
            s.last_rtt = RTT;
        }
        with.on_ack(&ack(Nanos(100_000), Nanos(8_000)));
        without.on_ack(&ack(Nanos(100_000), Nanos(8_000)));
        assert!((with.cwnd() - (without.cwnd() + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn vai_sf_variant_mints_tokens_under_heavy_delay() {
        let mut s = swift(SwiftConfig::vai_sf(RTT, LINE, 1));
        s.last_rtt = RTT;
        let mut now = Nanos(0);
        // Sustained 20 us delays (well past target 7us + 4us BDP delay).
        for _ in 0..50 {
            now += Nanos(5_000);
            s.on_ack(&ack(now, Nanos(20_000)));
        }
        assert!(
            s.vai
                .as_ref()
                .expect("VaiSf variant carries a VAI instance")
                .bank()
                > 0.0
        );
    }

    #[test]
    fn cwnd_clamped_to_line_rate() {
        let mut s = swift(SwiftConfig {
            ai_pkts: 1000.0,
            fbs: None,
            ..SwiftConfig::paper_default(RTT, LINE, 50.0)
        });
        for i in 0..100 {
            s.on_ack(&ack(Nanos(i * 100), Nanos(1_000)));
            assert!(s.cwnd() <= s.cfg.max_cwnd_pkts() + 1e-9);
        }
    }

    #[test]
    fn hyper_ai_multiplier_schedule() {
        let h = HyperAiConfig::timely_default();
        assert_eq!(h.multiplier(0), 1.0);
        assert_eq!(h.multiplier(4), 1.0);
        assert_eq!(h.multiplier(5), 2.0);
        assert_eq!(h.multiplier(7), 4.0);
        assert_eq!(h.multiplier(1000), 20.0); // capped
    }

    #[test]
    fn hyper_ai_accelerates_after_quiet_rtts() {
        let mk = |hyper| {
            let mut s = swift(SwiftConfig {
                fbs: None,
                hyper_ai: hyper,
                ..SwiftConfig::paper_default(RTT, LINE, 50.0)
            });
            s.cwnd = 5.0;
            s.ref_cwnd = 5.0;
            s.last_rtt = RTT;
            s
        };
        let mut stock = mk(None);
        let mut hai = mk(Some(HyperAiConfig::timely_default()));
        // 40 quiet RTTs' worth of ACKs (5 ACKs each, cwnd 5).
        let mut now = Nanos(0);
        for _ in 0..40 {
            for _ in 0..5 {
                now += Nanos(1_000);
                stock.on_ack(&ack(now, Nanos(4_000)));
                hai.on_ack(&ack(now, Nanos(4_000)));
            }
        }
        assert!(hai.clear_rtts() > 5, "streak {}", hai.clear_rtts());
        assert!(
            hai.cwnd() > stock.cwnd() * 1.5,
            "HAI cwnd {} should outgrow stock {}",
            hai.cwnd(),
            stock.cwnd()
        );
    }

    #[test]
    fn hyper_ai_streak_resets_on_congestion() {
        let mut s = swift(SwiftConfig {
            fbs: None,
            hyper_ai: Some(HyperAiConfig::timely_default()),
            ..SwiftConfig::paper_default(RTT, LINE, 50.0)
        });
        s.cwnd = 5.0;
        s.ref_cwnd = 5.0;
        s.last_rtt = RTT;
        let mut now = Nanos(0);
        for _ in 0..40 {
            now += Nanos(1_000);
            s.on_ack(&ack(now, Nanos(4_000)));
        }
        assert!(s.clear_rtts() > 0);
        // One congested ACK inside the next RTT kills the streak at the
        // next boundary. (The congested ACK inflates the RTT estimate to
        // 20 us, so the next boundary needs a 20 us gap.)
        now += Nanos(1_000);
        s.on_ack(&ack(now, Nanos(20_000)));
        now += Nanos(25_000);
        s.on_ack(&ack(now, Nanos(4_000)));
        assert_eq!(s.clear_rtts(), 0);
    }

    mod properties {
        use super::*;
        use dcsim::DetRng;

        /// Under arbitrary delay sequences the window stays within
        /// [floor, line-rate BDP], never NaN, and the target delay is
        /// monotone non-increasing in cwnd (FBS property).
        #[test]
        fn prop_cwnd_bounded() {
            for case in 0..64u64 {
                let mut rng = DetRng::new(0x5u64 * 0x1000 + case);
                let n = 1 + rng.below(299);
                let mut s = swift(SwiftConfig::vai_sf(RTT, LINE, 1));
                let mut now = Nanos(0);
                for _ in 0..n {
                    let d = 1_000 + rng.below(199_000);
                    now += Nanos(700);
                    s.on_ack(&ack(now, Nanos(d)));
                    assert!(s.cwnd().is_finite(), "case {case}");
                    assert!(s.cwnd() >= 0.001 - 1e-12, "case {case}");
                    assert!(s.cwnd() <= s.cfg.max_cwnd_pkts() + 1e-9, "case {case}");
                    assert!(s.limits().pacing.as_u64() > 0, "case {case}");
                }
            }
        }

        /// A congested decrease never cuts below the mdf floor in one
        /// step: cwnd_after >= cwnd_before * max_mdf (modulo the
        /// always-AI bonus, which only adds).
        #[test]
        fn prop_single_decrease_respects_floor() {
            for case in 0..64u64 {
                let mut rng = DetRng::new(0xf100 + case);
                let cwnd0 = 1.0 + 59.0 * rng.f64();
                let delay_us = 8 + rng.below(492);
                let mut s = swift(SwiftConfig {
                    fbs: None,
                    ..SwiftConfig::paper_default(RTT, LINE, 50.0)
                });
                s.cwnd = cwnd0;
                s.ref_cwnd = cwnd0;
                s.last_rtt = RTT;
                s.on_ack(&ack(Nanos(1_000_000), Nanos::from_micros(delay_us)));
                assert!(
                    s.cwnd() >= cwnd0 * s.cfg.max_mdf - 1e-9,
                    "case {case}: cwnd {} below floor of {}",
                    s.cwnd(),
                    cwnd0 * s.cfg.max_mdf
                );
            }
        }
    }

    #[test]
    fn names_follow_variant() {
        assert_eq!(
            swift(SwiftConfig::paper_default(RTT, LINE, 50.0)).name(),
            "Swift"
        );
        assert_eq!(
            swift(SwiftConfig::probabilistic(RTT, LINE, 50.0)).name(),
            "Swift Probabilistic"
        );
        assert_eq!(
            swift(SwiftConfig::vai_sf(RTT, LINE, 1)).name(),
            "Swift VAI SF"
        );
    }
}
