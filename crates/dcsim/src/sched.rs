//! The scheduler abstraction: what the engine needs from a future-event list.
//!
//! Two implementations exist, both preserving the engine's dispatch contract
//! exactly — events fire in `(time, insertion seq)` order, so simultaneous
//! events dequeue FIFO:
//!
//! * [`EventQueue`](crate::EventQueue) — a binary heap; `O(log n)` per
//!   operation, no assumptions about time distribution. The default.
//! * [`TimingWheel`](crate::TimingWheel) — a hierarchical timing wheel;
//!   amortised `O(1)` push/pop when pending times cluster near `now`, which
//!   is exactly the shape packet simulations produce.
//!
//! [`Simulation`](crate::Simulation) is generic over `Scheduler` with the
//! heap as the default type parameter, so existing call sites compile
//! unchanged and hot harnesses opt into the wheel explicitly (see
//! [`SchedulerKind`]).

use crate::time::Nanos;

/// A future-event list ordered by `(time, insertion seq)`.
///
/// The contract every implementation must honour (the engine and the
/// `scheduler_equivalence` property suite depend on it):
///
/// 1. `pop` returns pending events in non-decreasing time order; events with
///    equal times come back in push order (FIFO tie-breaking).
/// 2. `peek_time` never mutates observable state: callers peek against a
///    deadline and may push events earlier than the peeked time (but `>=`
///    the last popped time) afterwards.
/// 3. Pushes at times `>=` the last popped time are always legal, including
///    re-entrant pushes at exactly that time from inside a handler.
pub trait Scheduler<E> {
    /// Schedule `event` to fire at absolute time `at`.
    fn push(&mut self, at: Nanos, event: E);

    /// Remove and return the earliest event as `(time, event)`.
    fn pop(&mut self) -> Option<(Nanos, E)>;

    /// The firing time of the earliest event, without removing it.
    fn peek_time(&self) -> Option<Nanos>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (for engine statistics).
    fn total_pushed(&self) -> u64;

    /// Total number of events ever popped.
    fn total_popped(&self) -> u64;

    /// Drop all pending events (e.g. when a run ends at its horizon).
    /// Lifetime counters are preserved. After a clear, pushes must still be
    /// `>=` the last popped time.
    fn clear(&mut self);
}

/// Which [`Scheduler`] implementation a scenario runs on.
///
/// Carried as a field on scenario specs so harnesses (and the `perfbase`
/// benchmark) can switch engines per run. Defaults to the binary heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Binary-heap calendar queue ([`EventQueue`](crate::EventQueue)).
    #[default]
    Heap,
    /// Hierarchical timing wheel ([`TimingWheel`](crate::TimingWheel)).
    Wheel,
}

impl SchedulerKind {
    /// Stable lowercase name, used in benchmark JSON and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Wheel => "wheel",
        }
    }

    /// All kinds, for harnesses that sweep schedulers.
    pub const ALL: [SchedulerKind; 2] = [SchedulerKind::Heap, SchedulerKind::Wheel];
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(SchedulerKind::Heap),
            "wheel" => Ok(SchedulerKind::Wheel),
            other => Err(format!("unknown scheduler kind `{other}` (heap|wheel)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_names() {
        for kind in SchedulerKind::ALL {
            assert_eq!(
                kind.name()
                    .parse::<SchedulerKind>()
                    .expect("every kind name parses back"),
                kind
            );
        }
        assert!("quantum".parse::<SchedulerKind>().is_err());
    }

    #[test]
    fn default_is_heap() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::Heap);
    }
}
