//! The calendar queue: a time-ordered event heap with stable FIFO ordering
//! for events scheduled at the same instant.
//!
//! Determinism requirement: ns-3 (the simulator the paper used) breaks ties
//! by a monotonically increasing insertion id, and several congestion-control
//! behaviours (e.g. which of two flows' packets wins a free port) are
//! sensitive to that ordering. We replicate the same discipline: events are
//! ordered by `(time, seq)` where `seq` is assigned at push time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::sched::Scheduler;
use crate::time::Nanos;

/// One scheduled entry. Private: users see only `(Nanos, E)` pairs.
struct Entry<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq is unique, so total order — no unstable comparisons.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by time with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
    /// Events discarded by [`clear`](Self::clear), so the sim-audit
    /// conservation check `pushed == popped + cleared + len` stays exact.
    cleared: u64,
    /// `(time, seq)` of the most recent pop — the sim-audit witness that
    /// dispatch order is monotone in time and FIFO within a timestamp.
    last_popped: Option<(Nanos, u64)>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
            cleared: 0,
            last_popped: None,
        }
    }

    /// An empty queue with pre-reserved capacity (hot simulations know
    /// roughly how many in-flight events they keep: one per busy link plus
    /// one per paced flow).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pushed: 0,
            popped: 0,
            cleared: 0,
            last_popped: None,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: Nanos, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event as `(time, event)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            if crate::audit::ENABLED {
                if let Some((lt, lseq)) = self.last_popped {
                    crate::audit_assert!(
                        e.at > lt || (e.at == lt && e.seq > lseq),
                        "heap pop order regressed: ({:?}, seq {}) after ({lt:?}, seq {lseq})",
                        e.at,
                        e.seq
                    );
                }
                self.last_popped = Some((e.at, e.seq));
                crate::audit_assert_eq!(
                    self.pushed,
                    self.popped + self.cleared + self.heap.len() as u64,
                    "heap event conservation: pushed != popped + cleared + pending"
                );
            }
            (e.at, e.event)
        })
    }

    /// The firing time of the earliest event, without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (for engine statistics).
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total number of events ever popped.
    #[inline]
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drop all pending events (e.g. when a run ends at its horizon).
    pub fn clear(&mut self) {
        self.cleared += self.heap.len() as u64;
        self.heap.clear();
    }
}

impl<E> Scheduler<E> for EventQueue<E> {
    #[inline]
    fn push(&mut self, at: Nanos, event: E) {
        EventQueue::push(self, at, event)
    }

    #[inline]
    fn pop(&mut self) -> Option<(Nanos, E)> {
        EventQueue::pop(self)
    }

    #[inline]
    fn peek_time(&self) -> Option<Nanos> {
        EventQueue::peek_time(self)
    }

    #[inline]
    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    #[inline]
    fn is_empty(&self) -> bool {
        EventQueue::is_empty(self)
    }

    #[inline]
    fn total_pushed(&self) -> u64 {
        EventQueue::total_pushed(self)
    }

    #[inline]
    fn total_popped(&self) -> u64 {
        EventQueue::total_popped(self)
    }

    #[inline]
    fn clear(&mut self) {
        EventQueue::clear(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), "c");
        q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn interleaved_ties_keep_insertion_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(10), 'x');
        q.push(Nanos(5), 'a');
        q.push(Nanos(10), 'y');
        q.push(Nanos(5), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'x', 'y']);
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(Nanos(1), ());
        q.push(Nanos(2), ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Nanos(7), 1u8);
        assert_eq!(q.peek_time(), Some(Nanos(7)));
        assert_eq!(q.len(), 1);
    }

    /// Popping everything always yields a sequence sorted by time, and
    /// within equal times, by push order.
    #[test]
    fn prop_pops_sorted_and_stable() {
        let mut rng = DetRng::new(0x9_0e0e);
        for _ in 0..256 {
            let n = rng.below(200) as usize;
            let times: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(Nanos(*t), i);
            }
            let mut last: Option<(Nanos, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    assert!(t >= lt);
                    if t == lt {
                        assert!(idx > lidx, "FIFO violated for equal timestamps");
                    }
                }
                assert_eq!(Nanos(times[idx]), t);
                last = Some((t, idx));
            }
        }
    }

    /// Push/pop counts are conserved.
    #[test]
    fn prop_conservation() {
        let mut rng = DetRng::new(0xc0_15e7);
        for _ in 0..256 {
            let n = rng.below(100) as usize;
            let times: Vec<u64> = (0..n).map(|_| rng.below(50)).collect();
            let mut q = EventQueue::new();
            for t in &times {
                q.push(Nanos(*t), ());
            }
            let mut m = 0u64;
            while q.pop().is_some() {
                m += 1;
            }
            assert_eq!(m, times.len() as u64);
            assert_eq!(q.total_pushed(), q.total_popped());
        }
    }
}
