//! Deterministic random numbers for simulations.
//!
//! Every scenario run owns a [`DetRng`] seeded from a single `u64`. Distinct
//! subsystems (workload sampling, ECMP hashing, RED marking, probabilistic
//! feedback) should each take an independent *stream* split off the scenario
//! seed so that, e.g., adding one extra RED draw cannot perturb the flow
//! arrival sequence. Streams are derived with SplitMix64, the standard seed
//! expander, so nearby seeds still yield statistically independent streams.
//!
//! The core generator is an in-repo xoshiro256++ (Blackman & Vigna): fast,
//! non-cryptographic, 256-bit state — exactly what a network simulator
//! needs, with no external dependency so the workspace builds hermetically.

/// Stream label for workload sampling (flow arrivals, sizes).
pub const WORKLOAD_STREAM: u64 = 0;
/// Stream label for ECMP path hashing.
pub const ECMP_STREAM: u64 = 1;
/// Stream label for RED marking draws.
pub const RED_STREAM: u64 = 2;
/// Stream label for probabilistic feedback draws.
pub const FEEDBACK_STREAM: u64 = 3;
// Stream 4 is fault injection; netsim::fault owns FAULT_STREAM so the
// constant lives next to the code it disciplines.

/// SplitMix64 step: used for seed derivation only, never as the main RNG.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, splittable random number generator.
///
/// Internally xoshiro256++ plus the ability to derive independent child
/// generators by label.
pub struct DetRng {
    state: [u64; 4],
    seed: u64,
}

impl std::fmt::Debug for DetRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetRng").field("seed", &self.seed).finish()
    }
}

impl DetRng {
    /// Create a generator from a scenario seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        // Expand the u64 into the 256-bit state deterministically. SplitMix64
        // guarantees the expanded state is never all-zero for any seed.
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        DetRng { state, seed }
    }

    /// The seed this generator (or stream) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream.
    ///
    /// `label` identifies the consumer; use the named constants
    /// ([`WORKLOAD_STREAM`], [`ECMP_STREAM`], [`RED_STREAM`],
    /// [`FEEDBACK_STREAM`], `netsim::fault::FAULT_STREAM`) rather than raw
    /// numbers so assignments stay auditable. The
    /// child depends only on
    /// `(seed, label)`, never on how much randomness the parent has already
    /// consumed, which keeps subsystems decoupled.
    pub fn stream(&self, label: u64) -> DetRng {
        let mut s = self.seed ^ label.rotate_left(17).wrapping_mul(0xA24B_AED4_963E_E407);
        let derived = splitmix64(&mut s);
        DetRng::new(derived)
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of a 64-bit step).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's multiply-shift method with rejection for exact uniformity.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for Poisson arrival processes; mean is in whatever unit the
    /// caller works in (we use nanoseconds between flow arrivals).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse-CDF; (1 - u) avoids ln(0).
        -mean * (1.0 - self.f64()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn matches_xoshiro256plusplus_reference() {
        // Reference vector: state seeded as [1, 2, 3, 4] produces this
        // prefix (from the xoshiro256++ reference implementation).
        let mut r = DetRng::new(0);
        r.state = [1, 2, 3, 4];
        let expect: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expect {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn streams_are_independent_of_parent_consumption() {
        let parent1 = DetRng::new(7);
        let mut parent2 = DetRng::new(7);
        // Burn randomness on parent2 before splitting.
        for _ in 0..100 {
            parent2.next_u64();
        }
        let mut c1 = parent1.stream(3);
        let mut c2 = parent2.stream(3);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn distinct_stream_labels_differ() {
        let root = DetRng::new(9);
        let mut a = root.stream(0);
        let mut b = root.stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut a = DetRng::new(3);
        let mut b = DetRng::new(3);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        let full = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &full);
        assert_ne!(&buf[8..], &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(21);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(5);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::new(19);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "got {c}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_calibrated() {
        let mut r = DetRng::new(11);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn exp_mean_is_calibrated() {
        let mut r = DetRng::new(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(500.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 500.0).abs() < 10.0, "got {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exp_rejects_nonpositive_mean() {
        DetRng::new(1).exp(0.0);
    }
}
