//! Physical units shared across the workspace: byte counts and bit rates.
//!
//! These are deliberately thin integer newtypes. Congestion-control math that
//! genuinely needs fractions (windows measured in fractional packets, rates
//! mid-update) is done in `f64` by the protocol crates; the *network model*
//! works in whole bytes and bits-per-second so that link serialization times
//! are exact and runs are reproducible across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use crate::time::Nanos;

/// A count of bytes (payload sizes, queue depths, window sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from a raw byte count.
    ///
    /// The named counterpart of the tuple constructor; code outside this
    /// module should prefer it (simlint rule U3) so grep can find every
    /// point where an untyped integer becomes a byte count.
    #[inline]
    pub const fn new(b: u64) -> Self {
        Bytes(b)
    }

    /// Construct from kilobytes (10^3 bytes, the unit the paper uses for
    /// queue depths: "a queue of about 100KB"). Saturating.
    #[inline]
    pub const fn from_kb(kb: u64) -> Self {
        Bytes(kb.saturating_mul(1_000))
    }

    /// Construct from megabytes (10^6 bytes; flow sizes like "1MB flows").
    /// Saturating.
    #[inline]
    pub const fn from_mb(mb: u64) -> Self {
        Bytes(mb.saturating_mul(1_000_000))
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as `f64`, for fairness/utilization math.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two byte counts.
    #[inline]
    pub fn max(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.max(rhs.0))
    }

    /// The smaller of two byte counts.
    #[inline]
    pub fn min(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.min(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    /// Saturating: byte counters accumulate over a whole run (delivered
    /// bytes, queue occupancy integrals) and must clamp, not wrap.
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1_000_000 {
            write!(f, "{:.2}MB", b as f64 / 1e6)
        } else if b >= 1_000 {
            write!(f, "{:.1}KB", b as f64 / 1e3)
        } else {
            write!(f, "{b}B")
        }
    }
}

impl Nanos {
    /// Quantize a fractional duration (ns) onto the integer nanosecond grid.
    ///
    /// The sanctioned f64→u64 crossing for times, mirroring
    /// [`BitRate::from_bps_f64`] — but *truncating* rather than rounding,
    /// matching the discretization the congestion-control delay math has
    /// always used (so golden determinism traces are unchanged).
    ///
    /// A NaN or negative input is a bug in the caller's float math, so
    /// debug builds assert on it. Release builds clamp: NaN and negative
    /// values map to zero, `+inf`/overflow saturates at `u64::MAX`
    /// (Rust's float-to-int `as` semantics, which are platform-independent).
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Nanos {
        debug_assert!(
            ns.is_finite() && ns >= 0.0,
            "Nanos::from_ns_f64 called with {ns}: durations must be finite and non-negative"
        );
        Nanos(ns as u64)
    }
}

/// A link or injection rate in bits per second.
///
/// 100 Gbps — the paper's host link speed — is 1e11 bps, comfortably inside
/// `u64`. Conversions to serialization delay round to whole nanoseconds;
/// the link model owns sub-nanosecond residue (see `netsim::link`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BitRate(pub u64);

impl BitRate {
    /// Zero rate (an idle or fully throttled sender).
    pub const ZERO: BitRate = BitRate(0);

    /// Construct from raw bits per second.
    ///
    /// The named counterpart of the tuple constructor; code outside this
    /// module should prefer it (simlint rule U3) so grep can find every
    /// point where an untyped integer becomes a rate.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        BitRate(bps)
    }

    /// Construct from gigabits per second. Saturating.
    #[inline]
    pub const fn from_gbps(g: u64) -> Self {
        BitRate(g.saturating_mul(1_000_000_000))
    }

    /// Construct from megabits per second (the paper's AI unit: 50 Mbps).
    /// Saturating.
    #[inline]
    pub const fn from_mbps(m: u64) -> Self {
        BitRate(m.saturating_mul(1_000_000))
    }

    /// Quantize a fractional rate (bps) onto the integer rate grid.
    ///
    /// This is the one sanctioned f64→u64 crossing for rates: protocol
    /// crates keep mid-update rates in `f64` and materialize them here.
    /// Rounds to nearest.
    ///
    /// A NaN or negative input is a bug in the caller's rate math, so
    /// debug builds assert on it. Release builds clamp: NaN and negative
    /// values map to zero, `+inf`/overflow saturates at `u64::MAX`
    /// (Rust's float-to-int `as` semantics, which are platform-independent).
    #[inline]
    pub fn from_bps_f64(bps: f64) -> Self {
        debug_assert!(
            bps.is_finite() && bps >= 0.0,
            "BitRate::from_bps_f64 called with {bps}: rates must be finite and non-negative"
        );
        BitRate(bps.round() as u64)
    }

    /// Raw bits-per-second value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Rate in bits per second as `f64`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Rate expressed in bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// Time to serialize `bytes` at this rate, rounded up to whole ns.
    ///
    /// Rounding *up* guarantees a transmitter never emits faster than the
    /// physical line: 1000 B at 100 Gbps is exactly 80 ns; 1000 B at 400 Gbps
    /// is exactly 20 ns; 1 B at 3 Gbps rounds 2.67 ns up to 3 ns.
    #[inline]
    pub fn serialization_delay(self, bytes: Bytes) -> Nanos {
        assert!(self.0 > 0, "serialization delay at zero rate is undefined");
        // delay_ns = bytes * 8 * 1e9 / rate_bps, computed in u128 to avoid
        // overflow (bytes can be a whole flow for ideal-FCT math).
        // simlint: allow(O1) — widened to u128; max is 2^64 * 8e9 < 2^128
        let num = (bytes.0 as u128) * 8 * 1_000_000_000;
        let den = self.0 as u128;
        Nanos(num.div_ceil(den) as u64)
    }

    /// The number of bytes this rate delivers in `dur` (rounded down).
    #[inline]
    pub fn bytes_in(self, dur: Nanos) -> Bytes {
        // simlint: allow(O1) — widened to u128; product of two u64 fits
        let num = (self.0 as u128) * (dur.0 as u128);
        // simlint: allow(O1) — constant divisor product 8e9 fits in u128
        Bytes((num / (8 * 1_000_000_000)) as u64)
    }

    /// Bandwidth-delay product for a given round-trip time.
    ///
    /// This is the paper's `Token_Thresh` default: "the minimum BDP of the
    /// network, which is about 50KB" for 100 Gbps and a ~4 µs base RTT.
    #[inline]
    pub fn bdp(self, rtt: Nanos) -> Bytes {
        self.bytes_in(rtt)
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.0;
        if r >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", r as f64 / 1e9)
        } else if r >= 1_000_000 {
            write!(f, "{:.1}Mbps", r as f64 / 1e6)
        } else {
            write!(f, "{r}bps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::from_kb(50), Bytes(50_000));
        assert_eq!(Bytes::from_mb(1), Bytes(1_000_000));
    }

    #[test]
    fn serialization_delay_exact_cases() {
        // The two link speeds in the paper.
        let host = BitRate::from_gbps(100);
        let fabric = BitRate::from_gbps(400);
        assert_eq!(host.serialization_delay(Bytes(1000)), Nanos(80));
        assert_eq!(fabric.serialization_delay(Bytes(1000)), Nanos(20));
    }

    #[test]
    fn serialization_delay_rounds_up() {
        // 1 byte at 3 Gbps = 8/3 ns -> 3 ns.
        assert_eq!(
            BitRate::from_gbps(3).serialization_delay(Bytes(1)),
            Nanos(3)
        );
    }

    #[test]
    fn serialization_delay_huge_flow_no_overflow() {
        // A 10 GB flow at 100 Gbps takes 0.8 s.
        let r = BitRate::from_gbps(100);
        let d = r.serialization_delay(Bytes(10_000_000_000));
        assert_eq!(d, Nanos(800_000_000));
    }

    #[test]
    #[should_panic(expected = "zero rate")]
    fn serialization_delay_zero_rate_panics() {
        let _ = BitRate::ZERO.serialization_delay(Bytes(1));
    }

    #[test]
    fn bytes_in_matches_rate() {
        let r = BitRate::from_gbps(100); // 12.5 B/ns
        assert_eq!(r.bytes_in(Nanos(80)), Bytes(1000));
        assert_eq!(r.bytes_in(Nanos(1)), Bytes(12)); // floor(12.5)
    }

    #[test]
    fn bdp_matches_paper_token_thresh() {
        // 100 Gbps and a 4us RTT give the ~50KB minimum BDP quoted in VI-A.
        let bdp = BitRate::from_gbps(100).bdp(Nanos::from_micros(4));
        assert_eq!(bdp, Bytes(50_000));
    }

    #[test]
    fn f64_crossings_quantize() {
        assert_eq!(Nanos::from_ns_f64(2.9), Nanos(2)); // truncates
        assert_eq!(Nanos::from_ns_f64(0.0), Nanos::ZERO);
        assert_eq!(BitRate::from_bps_f64(2.5), BitRate(3)); // rounds
        assert_eq!(BitRate::from_bps_f64(1e11), BitRate::from_gbps(100));
    }

    #[test]
    fn saturating_unit_arithmetic() {
        assert_eq!(Bytes(u64::MAX) + Bytes(1), Bytes(u64::MAX));
        let mut b = Bytes(u64::MAX);
        b += Bytes(1);
        assert_eq!(b, Bytes(u64::MAX));
        assert_eq!(Bytes::from_mb(u64::MAX), Bytes(u64::MAX));
        assert_eq!(BitRate::from_gbps(u64::MAX), BitRate(u64::MAX));
    }

    #[cfg(debug_assertions)]
    mod f64_crossing_debug_guards {
        use super::*;

        #[test]
        #[should_panic(expected = "finite and non-negative")]
        fn from_ns_f64_nan_asserts() {
            let _ = Nanos::from_ns_f64(f64::NAN);
        }

        #[test]
        #[should_panic(expected = "finite and non-negative")]
        fn from_ns_f64_negative_asserts() {
            let _ = Nanos::from_ns_f64(-1.0);
        }

        #[test]
        #[should_panic(expected = "finite and non-negative")]
        fn from_bps_f64_nan_asserts() {
            let _ = BitRate::from_bps_f64(f64::NAN);
        }

        #[test]
        #[should_panic(expected = "finite and non-negative")]
        fn from_bps_f64_infinite_asserts() {
            let _ = BitRate::from_bps_f64(f64::INFINITY);
        }
    }

    #[cfg(not(debug_assertions))]
    mod f64_crossing_release_clamps {
        use super::*;

        #[test]
        fn from_ns_f64_clamps_bad_inputs() {
            assert_eq!(Nanos::from_ns_f64(f64::NAN), Nanos::ZERO);
            assert_eq!(Nanos::from_ns_f64(-5.0), Nanos::ZERO);
            assert_eq!(Nanos::from_ns_f64(f64::INFINITY), Nanos::MAX);
        }

        #[test]
        fn from_bps_f64_clamps_bad_inputs() {
            assert_eq!(BitRate::from_bps_f64(f64::NAN), BitRate::ZERO);
            assert_eq!(BitRate::from_bps_f64(-5.0), BitRate::ZERO);
            assert_eq!(BitRate::from_bps_f64(f64::INFINITY), BitRate(u64::MAX));
        }
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", Bytes(512)), "512B");
        assert_eq!(format!("{}", Bytes(50_000)), "50.0KB");
        assert_eq!(format!("{}", Bytes(2_500_000)), "2.50MB");
        assert_eq!(format!("{}", BitRate::from_gbps(100)), "100.00Gbps");
        assert_eq!(format!("{}", BitRate::from_mbps(50)), "50.0Mbps");
    }
}
