//! Simulation time.
//!
//! All simulation time in this workspace is an absolute count of nanoseconds
//! since the start of the run, held in a [`Nanos`] newtype. One nanosecond of
//! resolution is sufficient for 100 Gbps links (12.5 bytes per nanosecond):
//! a 1000-byte frame serializes in exactly 80 ns. Sub-nanosecond residue from
//! non-divisible rates is accumulated by the link model in fractional bytes
//! rather than by widening the clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulation time (or a duration), in nanoseconds.
///
/// `Nanos` is used for both instants and durations. Additive and scaling
/// arithmetic **saturates** at `u64::MAX`: the far-future sentinel
/// [`Nanos::MAX`] flows through deadline math (`MAX + rtt` must stay MAX,
/// not wrap to the past and fire an event at time zero). Subtraction still
/// panics on underflow in debug builds — a negative duration is always a
/// logic bug worth catching loudly; use [`Nanos::saturating_sub`] where
/// clamping at zero is the intended semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero — the start of every simulation.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable time; used as an "infinitely far" deadline.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// One microsecond.
    pub const MICRO: Nanos = Nanos(1_000);
    /// One millisecond.
    pub const MILLI: Nanos = Nanos(1_000_000);
    /// One second.
    pub const SEC: Nanos = Nanos(1_000_000_000);

    /// Construct from a raw nanosecond count.
    ///
    /// The named counterpart of the tuple constructor; code outside this
    /// module should prefer it (simlint rule U3) so grep can find every
    /// point where an untyped integer becomes a time.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Construct from whole microseconds (saturating).
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us.saturating_mul(1_000))
    }

    /// Construct from whole milliseconds (saturating).
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds (saturating).
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s.saturating_mul(1_000_000_000))
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    ///
    /// Used for "how much later is a than b, if at all" computations such as
    /// queueing-delay estimates where measurement jitter could otherwise
    /// underflow.
    #[inline]
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }

    /// The smaller of two instants.
    #[inline]
    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    /// Saturating: `Nanos::MAX + d == Nanos::MAX`, so "never" deadlines
    /// survive offset arithmetic instead of wrapping into the past.
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    /// Saturating, for the same reason as `Add`.
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Rem<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn rem(self, rhs: u64) -> Nanos {
        Nanos(self.0 % rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    /// Human-oriented rendering with an automatically chosen unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n >= 1_000_000_000 {
            write!(f, "{:.3}s", n as f64 / 1e9)
        } else if n >= 1_000_000 {
            write!(f, "{:.3}ms", n as f64 / 1e6)
        } else if n >= 1_000 {
            write!(f, "{:.3}us", n as f64 / 1e3)
        } else {
            write!(f, "{n}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Nanos::from_micros(3), Nanos(3_000));
        assert_eq!(Nanos::from_millis(2), Nanos(2_000_000));
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = Nanos(500);
        let b = Nanos(200);
        assert_eq!(a + b, Nanos(700));
        assert_eq!(a - b, Nanos(300));
        assert_eq!(a * 3, Nanos(1500));
        assert_eq!(a / 5, Nanos(100));
        assert_eq!((a + b) % 300, Nanos(100));
    }

    #[test]
    fn add_and_mul_saturate_at_max() {
        assert_eq!(Nanos::MAX + Nanos(1), Nanos::MAX);
        let mut t = Nanos::MAX;
        t += Nanos::SEC;
        assert_eq!(t, Nanos::MAX);
        assert_eq!(Nanos::MAX * 2, Nanos::MAX);
        assert_eq!(Nanos::from_secs(u64::MAX), Nanos::MAX);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Nanos(10).saturating_sub(Nanos(20)), Nanos::ZERO);
        assert_eq!(Nanos(20).saturating_sub(Nanos(10)), Nanos(10));
    }

    #[test]
    fn float_views() {
        assert!((Nanos(1_500).as_micros_f64() - 1.5).abs() < 1e-12);
        assert!((Nanos(2_500_000).as_millis_f64() - 2.5).abs() < 1e-12);
        assert!((Nanos(750_000_000).as_secs_f64() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos(999)), "999ns");
        assert_eq!(format!("{}", Nanos(1_500)), "1.500us");
        assert_eq!(format!("{}", Nanos(2_000_000)), "2.000ms");
        assert_eq!(format!("{}", Nanos(3_000_000_000)), "3.000s");
    }

    #[test]
    fn min_max_and_sum() {
        assert_eq!(Nanos(3).max(Nanos(5)), Nanos(5));
        assert_eq!(Nanos(3).min(Nanos(5)), Nanos(3));
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }
}
