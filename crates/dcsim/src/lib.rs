//! `dcsim` — a deterministic discrete-event simulation engine.
//!
//! This crate is the substrate beneath the packet-level network simulator in
//! `netsim`: it provides a nanosecond-resolution clock, a calendar queue
//! with stable FIFO ordering for simultaneous events, a seedable RNG with
//! stream splitting, and a small driver loop.
//!
//! The design goals, in order:
//!
//! 1. **Determinism.** Two runs with the same seed and the same event inserts
//!    produce byte-identical schedules. The calendar queue breaks time ties
//!    by insertion sequence number, so `HashMap` iteration order or heap
//!    internals can never leak into results.
//! 2. **Throughput.** Datacenter simulations at 100 Gbps push hundreds of
//!    millions of events; the hot path is `push`/`pop` on a binary heap of
//!    small entries plus a `match` in the handler. No allocation happens
//!    per event (the event payload type is chosen by the embedder and should
//!    be small and `Copy` where possible).
//! 3. **Embeddability.** The engine owns nothing about networks. Embedders
//!    implement [`World`] and keep all domain state in one struct, arena
//!    style, as recommended for data-oriented simulation cores.
//!
//! # Quick example
//!
//! ```
//! use dcsim::{Nanos, Scheduler, Simulation, TimingWheel, World};
//!
//! struct Counter { fired: u64 }
//!
//! impl World for Counter {
//!     type Event = u32;
//!     fn handle<S: Scheduler<u32>>(&mut self, now: Nanos, ev: u32, q: &mut S) {
//!         self.fired += 1;
//!         if ev < 3 {
//!             q.push(now + Nanos(10), ev + 1);
//!         }
//!     }
//! }
//!
//! // Default scheduler: the binary-heap EventQueue.
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.queue_mut().push(Nanos(0), 0);
//! sim.run();
//! assert_eq!(sim.world().fired, 4);
//! assert_eq!(sim.now(), Nanos(30));
//!
//! // Same world, timing-wheel scheduler — identical dispatch order.
//! let mut sim = Simulation::with_scheduler(Counter { fired: 0 }, TimingWheel::new());
//! sim.queue_mut().push(Nanos(0), 0);
//! sim.run();
//! assert_eq!(sim.world().fired, 4);
//! assert_eq!(sim.now(), Nanos(30));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod engine;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod time;
pub mod units;
pub mod wheel;

pub use engine::{RunOutcome, Simulation, World};
pub use queue::EventQueue;
pub use rng::{DetRng, ECMP_STREAM, FEEDBACK_STREAM, RED_STREAM, WORKLOAD_STREAM};
pub use sched::{Scheduler, SchedulerKind};
pub use time::Nanos;
pub use units::{BitRate, Bytes};
pub use wheel::TimingWheel;
