//! A hierarchical timing wheel: the engine's fast calendar for event
//! populations whose firing times cluster near `now` — the shape every
//! packet-level workload produces (serialization delays, RTOs, CC timers
//! are all bounded multiples of the RTT).
//!
//! # Layout
//!
//! Six levels of 64 slots each. Level `l` has slot granularity `64^l` ns, so
//! the wheel directly covers deltas up to `64^6 = 2^36` ns (≈ 68.7 s of
//! simulated time past the cursor); rarer, farther events wait in a spill
//! heap and migrate into the wheel when the cursor approaches. Slots are
//! addressed by *absolute* time: an event firing at `t` held at level `l`
//! lives in slot `(t >> 6l) & 63`. Each level keeps a 64-bit occupancy
//! bitmap, so "next non-empty slot after the cursor" is one `rotate_right`
//! plus `trailing_zeros` — no scanning.
//!
//! # Dispatch contract
//!
//! Identical to [`EventQueue`](crate::EventQueue): pops come back ordered by
//! `(time, push seq)`. Two details carry the FIFO guarantee:
//!
//! * Every entry records the monotone push sequence number. A slot can
//!   accumulate same-time entries *out of* seq order (an early push parked at
//!   level 1 cascades down after a later same-time push landed at level 0
//!   directly), so a drained slot is sorted by seq before dispatch.
//! * `peek_time` is read-only. The engine peeks against deadlines between
//!   runs and users may then push events earlier than the peeked time, so
//!   the peek must not commit the cursor forward. Only `pop` advances it.
//!
//! # Invariants
//!
//! With `cursor` = the last dispatched time (never decreasing; pushes are
//! `>= cursor` by the engine contract):
//!
//! 1. Level-0 entries all fire within `[cursor, cursor + 64)`, so a level-0
//!    slot holds exactly one timestamp and `cursor + trailing_zeros` of the
//!    rotated bitmap is the exact earliest level-0 time.
//! 2. At levels `>= 1`, the slot sharing the cursor's own index *almost*
//!    always holds only next-revolution entries: the cursor enters a block
//!    through a cascade, which drains that block's slot first, and later
//!    pushes into the current block land at a lower level by construction.
//!    The one exception is a cascade whose lower bound ties with a coarser
//!    level's block start — the jump lands exactly on that boundary while
//!    the coarser slot still holds its entries. `upper_first` therefore
//!    verifies the own slot's actual block instead of assuming, and answers
//!    with the block start itself for current-block entries so that slot is
//!    cascaded (healed) before anything else advances.
//! 3. Each occupied slot at level `l` holds entries of a single `64^l`-sized
//!    block (entries are inserted with delta < `64^(l+1)`, one revolution),
//!    so the first occupied slot past the cursor bounds — and at level 0
//!    equals — that level's earliest entry.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::sched::Scheduler;
use crate::time::Nanos;

/// log2 of the slot count per level.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Number of wheel levels.
const LEVELS: usize = 6;
/// Deltas at or beyond this go to the spill heap (`64^LEVELS`).
const SPAN: u64 = 1 << (BITS as u64 * LEVELS as u64);

/// One scheduled entry.
struct Entry<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted so the spill BinaryHeap (a max-heap) pops the earliest
        // (time, seq) first. seq is unique, so the order is total.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Where the next cursor advance should land.
enum Advance {
    /// Commit the level-0 slot holding exactly time `.0`.
    Commit(u64),
    /// Cascade the slot of level `.1` whose block starts at `.0`.
    Cascade(u64, usize),
    /// Migrate spill-heap entries; the earliest fires at `.0`.
    Spill(u64),
}

/// A hierarchical timing-wheel [`Scheduler`]. See the module docs.
pub struct TimingWheel<E> {
    /// `LEVELS * SLOTS` buckets, flat: `slots[level * SLOTS + slot]`.
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Entries farther than `SPAN` past the cursor, min-ordered.
    spill: BinaryHeap<Entry<E>>,
    /// The drained slot currently being dispatched, sorted by seq
    /// *descending* so `Vec::pop` yields the lowest seq in O(1).
    active: Vec<Entry<E>>,
    /// Lower bound on all pending times; the last popped time.
    cursor: u64,
    next_seq: u64,
    pushed: u64,
    popped: u64,
    pending: usize,
    /// `(time, seq)` of the most recent pop — the sim-audit witness that
    /// dispatch order is monotone in time and FIFO within a timestamp.
    last_popped: Option<(Nanos, u64)>,
    /// Profiling: slot cascades performed (upper-level re-placement work).
    #[cfg(feature = "trace")]
    cascades: u64,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimingWheel<E> {
    /// An empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            spill: BinaryHeap::new(),
            active: Vec::new(),
            cursor: 0,
            next_seq: 0,
            pushed: 0,
            popped: 0,
            pending: 0,
            last_popped: None,
            #[cfg(feature = "trace")]
            cascades: 0,
        }
    }

    /// Number of slot cascades performed so far (each moves an upper-level
    /// slot's entries one level down), a measure of wheel re-placement
    /// overhead. Always 0 without the `trace` cargo feature.
    #[inline]
    pub fn cascades(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            self.cascades
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// sim-audit: the `pending` counter must equal the entries actually
    /// resident across the wheel slots, the spill heap, and the active
    /// drain buffer. O(levels × slots), so checked once per slot drain,
    /// not per pop.
    fn audit_occupancy(&self) {
        if crate::audit::ENABLED {
            let resident: usize = self.slots.iter().map(Vec::len).sum::<usize>()
                + self.spill.len()
                + self.active.len();
            crate::audit_assert_eq!(
                self.pending,
                resident,
                "wheel occupancy accounting: pending != slots + spill + active"
            );
            for (level, &occ) in self.occupied.iter().enumerate() {
                for slot in 0..SLOTS {
                    let has = !self.slots[level * SLOTS + slot].is_empty();
                    crate::audit_assert_eq!(
                        occ & (1 << slot) != 0,
                        has,
                        "wheel bitmap desync at level {level} slot {slot}"
                    );
                }
            }
        }
    }

    /// Place an entry into the wheel or the spill heap, relative to the
    /// current cursor. Used by push and by cascades.
    fn place(&mut self, e: Entry<E>) {
        // The engine contract forbids scheduling into the past; in release
        // builds a violating push is clamped to fire as soon as possible.
        debug_assert!(
            e.at.as_u64() >= self.cursor,
            "push at {:?} is before the wheel cursor {}",
            e.at,
            self.cursor
        );
        crate::audit_assert!(
            e.at.as_u64() >= self.cursor,
            "clock monotonicity: wheel push at {:?} behind cursor {}",
            e.at,
            self.cursor
        );
        let t = e.at.as_u64().max(self.cursor);
        let delta = t - self.cursor;
        if delta >= SPAN {
            self.spill.push(e);
            return;
        }
        // Insertion level: the smallest l with delta < 64^(l+1).
        let level = if delta == 0 {
            0
        } else {
            ((63 - delta.leading_zeros()) / BITS) as usize
        };
        let slot = ((t >> (BITS as u64 * level as u64)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(e);
        self.occupied[level] |= 1 << slot;
    }

    /// Exact earliest level-0 firing time, if any (invariant 1).
    #[inline]
    fn level0_next(&self) -> Option<u64> {
        if self.occupied[0] == 0 {
            return None;
        }
        let cur = (self.cursor & (SLOTS as u64 - 1)) as u32;
        let tz = self.occupied[0].rotate_right(cur).trailing_zeros() as u64;
        Some(self.cursor + tz)
    }

    /// For level `l >= 1`: the first occupied slot past the cursor in
    /// rotation order and the start time of its block.
    ///
    /// The cursor's own index usually holds next-revolution entries
    /// (invariant 2) and counts as a full revolution away — but a cascade
    /// whose lower bound ties with a *coarser* level's block start can land
    /// the cursor exactly on that boundary before the coarser slot drains,
    /// so the own slot is checked against the actual block of its entries
    /// rather than assumed. Current-block entries report the block start
    /// itself (<= cursor, the minimum possible bound), which makes the
    /// healing cascade win the very next advance decision.
    #[inline]
    fn upper_first(&self, level: usize) -> Option<(usize, u64)> {
        let occ = self.occupied[level];
        if occ == 0 {
            return None;
        }
        let shift = BITS as u64 * level as u64;
        let cur_block = self.cursor >> shift;
        let cur = (cur_block & (SLOTS as u64 - 1)) as u32;
        let rot = occ.rotate_right(cur);
        if rot & 1 != 0 {
            let slot = cur as usize;
            let e = self.slots[level * SLOTS + slot]
                .first()
                .expect("occupied bit set on empty slot");
            if e.at.0 >> shift == cur_block {
                return Some((slot, cur_block << shift));
            }
        }
        let (off, slot) = if rot & !1 != 0 {
            let tz = (rot & !1).trailing_zeros() as u64;
            (tz, ((cur as u64 + tz) & (SLOTS as u64 - 1)) as usize)
        } else {
            (SLOTS as u64, cur as usize)
        };
        Some((slot, (cur_block + off) << shift))
    }

    /// Decide the next advance step. `None` only when nothing is pending
    /// outside `active`.
    fn next_advance(&self) -> Option<Advance> {
        let t0 = self.level0_next();
        let mut best: Option<Advance> = None;
        let mut best_lb = u64::MAX;
        for level in 1..LEVELS {
            if let Some((slot, lb)) = self.upper_first(level) {
                if lb < best_lb {
                    best_lb = lb;
                    best = Some(Advance::Cascade(lb, level * SLOTS + slot));
                }
            }
        }
        if let Some(top) = self.spill.peek() {
            if top.at.0 < best_lb {
                best_lb = top.at.0;
                best = Some(Advance::Spill(top.at.0));
            }
        }
        match t0 {
            // The level-0 time is exact; an upper block with the same lower
            // bound may still hide an equal-time entry with a smaller seq,
            // so level 0 only wins strictly.
            Some(t0) if t0 < best_lb => Some(Advance::Commit(t0)),
            _ => best,
        }
    }

    /// Advance the cursor to the next pending time and drain that level-0
    /// slot into `active`. Caller guarantees something is pending.
    fn drain_next(&mut self) {
        debug_assert!(self.active.is_empty());
        loop {
            match self.next_advance().expect("pending events exist") {
                Advance::Commit(t0) => {
                    let slot = (t0 & (SLOTS as u64 - 1)) as usize;
                    self.occupied[0] &= !(1 << slot);
                    std::mem::swap(&mut self.active, &mut self.slots[slot]);
                    // FIFO: dispatch lowest seq first; `pop` takes from the
                    // back, so sort descending.
                    self.active
                        .sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
                    self.cursor = t0;
                    if crate::audit::ENABLED {
                        // Invariant 1: a level-0 slot holds one timestamp.
                        for e in &self.active {
                            crate::audit_assert_eq!(
                                e.at.as_u64(),
                                t0,
                                "level-0 slot mixed timestamps at commit"
                            );
                        }
                        self.audit_occupancy();
                    }
                    return;
                }
                Advance::Cascade(lb, idx) => {
                    #[cfg(feature = "trace")]
                    {
                        self.cascades += 1;
                    }
                    // Safe: lb is <= every pending firing time (each entry
                    // fires at or after its slot's block start). A healing
                    // cascade of the cursor's own block reports lb <= cursor;
                    // the clamp keeps the cursor monotone.
                    self.cursor = self.cursor.max(lb);
                    self.occupied[idx / SLOTS] &= !(1 << (idx % SLOTS));
                    let mut moved = std::mem::take(&mut self.slots[idx]);
                    for e in moved.drain(..) {
                        self.place(e);
                    }
                    // Hand the allocation back to the (now empty) slot.
                    self.slots[idx] = moved;
                }
                Advance::Spill(at) => {
                    self.cursor = at;
                    while let Some(top) = self.spill.peek() {
                        if top.at.0 - self.cursor >= SPAN {
                            break;
                        }
                        let e = self.spill.pop().expect("peeked");
                        self.place(e);
                    }
                }
            }
        }
    }
}

impl<E> Scheduler<E> for TimingWheel<E> {
    #[inline]
    fn push(&mut self, at: Nanos, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.pending += 1;
        self.place(Entry { at, seq, event });
    }

    fn pop(&mut self) -> Option<(Nanos, E)> {
        if self.active.is_empty() {
            if self.pending == 0 {
                return None;
            }
            self.drain_next();
        }
        let e = self.active.pop().expect("drained slot is non-empty");
        self.popped += 1;
        self.pending -= 1;
        if crate::audit::ENABLED {
            if let Some((lt, lseq)) = self.last_popped {
                crate::audit_assert!(
                    e.at > lt || (e.at == lt && e.seq > lseq),
                    "wheel pop order regressed: ({:?}, seq {}) after ({lt:?}, seq {lseq})",
                    e.at,
                    e.seq
                );
            }
            self.last_popped = Some((e.at, e.seq));
        }
        Some((e.at, e.event))
    }

    fn peek_time(&self) -> Option<Nanos> {
        // `active` entries share one timestamp — the minimum pending time:
        // re-entrant pushes at that same time land in the (already drained)
        // level-0 cursor slot and are picked up by the next drain.
        if let Some(e) = self.active.last() {
            return Some(e.at);
        }
        let mut best = self.level0_next();
        for level in 1..LEVELS {
            if let Some((slot, _)) = self.upper_first(level) {
                // The first occupied slot holds this level's earliest entry
                // (invariant 3); later slots start whole blocks after it.
                let slot_min = self.slots[level * SLOTS + slot]
                    .iter()
                    .map(|e| e.at.0)
                    .min()
                    .expect("occupied slot is non-empty");
                best = Some(best.map_or(slot_min, |b| b.min(slot_min)));
            }
        }
        if let Some(top) = self.spill.peek() {
            best = Some(best.map_or(top.at.0, |b| b.min(top.at.0)));
        }
        best.map(Nanos)
    }

    #[inline]
    fn len(&self) -> usize {
        self.pending
    }

    #[inline]
    fn total_pushed(&self) -> u64 {
        self.pushed
    }

    #[inline]
    fn total_popped(&self) -> u64 {
        self.popped
    }

    fn clear(&mut self) {
        for level in 0..LEVELS {
            let mut occ = self.occupied[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                self.slots[level * SLOTS + slot].clear();
                occ &= occ - 1;
            }
            self.occupied[level] = 0;
        }
        self.spill.clear();
        self.active.clear();
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use crate::rng::DetRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = TimingWheel::new();
        q.push(Nanos(30), "c");
        q.push(Nanos(10), "a");
        q.push(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = TimingWheel::new();
        for i in 0..100 {
            q.push(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn cascaded_ties_still_dispatch_in_push_order() {
        // Seq inversion inside a slot: push A at t=100 while the cursor is
        // far away (parks at level 1), advance the cursor close, push B at
        // t=100 (lands at level 0 directly), then let A cascade down after
        // B. FIFO demands A pops first.
        let mut q = TimingWheel::new();
        q.push(Nanos(100), "a"); // delta 100 -> level 1
        q.push(Nanos(70), "warp");
        assert_eq!(q.pop(), Some((Nanos(70), "warp"))); // cursor -> 70
        q.push(Nanos(100), "b"); // delta 30 -> level 0
        assert_eq!(q.pop(), Some((Nanos(100), "a")));
        assert_eq!(q.pop(), Some((Nanos(100), "b")));
    }

    #[test]
    fn reentrant_pushes_at_now_extend_the_tie_burst() {
        let mut q = TimingWheel::new();
        q.push(Nanos(50), 0);
        q.push(Nanos(50), 1);
        assert_eq!(q.pop(), Some((Nanos(50), 0)));
        // Handler schedules more work at the same instant.
        q.push(Nanos(50), 2);
        assert_eq!(q.pop(), Some((Nanos(50), 1)));
        assert_eq!(q.pop(), Some((Nanos(50), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_is_exact_and_does_not_commit() {
        let mut q = TimingWheel::new();
        q.push(Nanos(5_000_000), 1); // level 3 territory
        assert_eq!(q.peek_time(), Some(Nanos(5_000_000)));
        // Peeking must not have advanced the cursor: an earlier push is
        // still legal and must pop first.
        q.push(Nanos(3), 2);
        assert_eq!(q.pop(), Some((Nanos(3), 2)));
        assert_eq!(q.pop(), Some((Nanos(5_000_000), 1)));
    }

    #[test]
    fn spill_heap_handles_far_future() {
        let mut q = TimingWheel::new();
        q.push(Nanos(SPAN * 3 + 17), "far");
        q.push(Nanos(2), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Nanos(2)));
        assert_eq!(q.pop(), Some((Nanos(2), "near")));
        assert_eq!(q.pop(), Some((Nanos(SPAN * 3 + 17), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn counters_and_clear() {
        let mut q = TimingWheel::new();
        q.push(Nanos(1), ());
        q.push(Nanos(2), ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2);
        // Post-clear pushes respect the cursor and keep working.
        q.push(Nanos(9), ());
        assert_eq!(q.pop(), Some((Nanos(9), ())));
    }

    #[test]
    fn tied_cascade_at_a_coarser_block_boundary_does_not_strand_entries() {
        // Reduced from a randomized failure: a level-4 cascade whose lower
        // bound sits exactly on a level-5 block boundary used to jump the
        // cursor onto that boundary before level 5's slot drained, after
        // which the slot read as "next revolution" and its entries were
        // popped a whole revolution late (or tripped the cursor assert).
        const L5: u64 = 1 << 30; // level-5 slot granularity
        let mut q = TimingWheel::new();
        // Parks at level 5, slot (124 & 63): block 124.
        q.push(Nanos(124 * L5 + 966_283_264), "late");
        // Move the cursor into block 123 so "late" stays parked.
        q.push(Nanos(123 * L5 + 900_000_000), "warp");
        assert_eq!(q.pop(), Some((Nanos(123 * L5 + 900_000_000), "warp")));
        // Lands at level 4 with a lower bound of exactly 124 * L5 — tying
        // the level-5 slot's block start.
        q.push(Nanos(124 * L5 + 589_824), "tie");
        assert_eq!(q.peek_time(), Some(Nanos(124 * L5 + 589_824)));
        assert_eq!(q.pop(), Some((Nanos(124 * L5 + 589_824), "tie")));
        assert_eq!(q.pop(), Some((Nanos(124 * L5 + 966_283_264), "late")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn matches_heap_on_randomized_mixed_ranges() {
        // Broad in-crate smoke version of tests/scheduler_equivalence.rs:
        // random pushes across all levels and the spill heap, interleaved
        // with pops, must match the binary heap exactly.
        let mut rng = DetRng::new(0xD15C);
        for case in 0..200 {
            let mut heap = EventQueue::new();
            let mut wheel = TimingWheel::new();
            let mut now = 0u64;
            for step in 0..200 {
                if rng.chance(0.6) {
                    let delta = match rng.below(5) {
                        0 => rng.below(4),           // ties & level 0
                        1 => rng.below(64),          // level 0
                        2 => rng.below(1 << 12),     // level 1
                        3 => rng.below(1 << 30),     // mid levels
                        _ => SPAN + rng.below(SPAN), // spill
                    };
                    let ev = case * 1000 + step;
                    heap.push(Nanos(now + delta), ev);
                    wheel.push(Nanos(now + delta), ev);
                } else {
                    let a = heap.pop();
                    let b = wheel.pop();
                    assert_eq!(a, b, "case {case} step {step}");
                    if let Some((t, _)) = a {
                        now = t.0;
                    }
                }
            }
            loop {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "case {case} drain");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
