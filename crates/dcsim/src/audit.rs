//! Runtime invariant audit support (the `sim-audit` feature).
//!
//! The simulator's correctness rests on a handful of structural
//! invariants — the clock never runs backwards, FIFO ties break by
//! insertion order, every byte enqueued at a port is eventually
//! transmitted, dropped, or resident. Violations of these invariants do
//! not crash; they silently skew results. The `sim-audit` feature turns
//! them into hard assertions at the places where they are cheapest to
//! check.
//!
//! Crates downstream of `dcsim` forward the feature
//! (`sim-audit = ["dcsim/sim-audit"]`) so that one flag controls the
//! whole workspace:
//!
//! ```text
//! cargo test --features sim-audit
//! ```
//!
//! The checks are compiled out entirely when the feature is off — the
//! macros expand to a constant-false branch the optimizer removes — so
//! release benchmarks are unaffected.

/// Whether invariant audits are compiled into this build.
///
/// Referenced by [`audit_assert!`](crate::audit_assert) via `$crate` so
/// downstream crates gate on *dcsim's* feature unification, not their
/// own `cfg!` context.
pub const ENABLED: bool = cfg!(feature = "sim-audit");

/// Assert a simulator invariant when the `sim-audit` feature is on.
///
/// Identical to `assert!` under `--features sim-audit`; expands to a
/// branch on a `false` constant otherwise (dead-code eliminated, and
/// the arguments still type-check in both configurations).
#[macro_export]
macro_rules! audit_assert {
    ($cond:expr, $($arg:tt)+) => {
        if $crate::audit::ENABLED && !$cond {
            panic!(
                "sim-audit invariant violated: {}",
                format_args!($($arg)+)
            );
        }
    };
}

/// Assert two simulator quantities are equal when `sim-audit` is on.
///
/// Like `assert_eq!`, but the failure message leads with both values so
/// conservation mismatches show the delta at a glance.
#[macro_export]
macro_rules! audit_assert_eq {
    ($left:expr, $right:expr, $($arg:tt)+) => {
        if $crate::audit::ENABLED {
            let l = $left;
            let r = $right;
            if l != r {
                panic!(
                    "sim-audit invariant violated: {} (left = {:?}, right = {:?})",
                    format_args!($($arg)+),
                    l,
                    r
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_tracks_feature() {
        assert_eq!(super::ENABLED, cfg!(feature = "sim-audit"));
    }

    #[test]
    fn passing_asserts_are_silent() {
        audit_assert!(1 + 1 == 2, "arithmetic holds");
        audit_assert_eq!(3_u64, 3_u64, "identical values compare equal");
    }

    #[cfg(feature = "sim-audit")]
    #[test]
    #[should_panic(expected = "sim-audit invariant violated")]
    fn failing_assert_panics_when_enabled() {
        audit_assert!(false, "deliberate failure for the test");
    }

    #[cfg(feature = "sim-audit")]
    #[test]
    #[should_panic(expected = "sim-audit invariant violated")]
    fn failing_assert_eq_panics_when_enabled() {
        audit_assert_eq!(1_u64, 2_u64, "deliberate mismatch for the test");
    }

    #[cfg(not(feature = "sim-audit"))]
    #[test]
    fn failing_assert_is_compiled_out_when_disabled() {
        audit_assert!(false, "must not fire without the feature");
        audit_assert_eq!(1_u64, 2_u64, "must not fire without the feature");
    }
}
