//! The simulation driver: pulls events off the scheduler in time order
//! and dispatches them to a [`World`].

use crate::queue::EventQueue;
use crate::sched::Scheduler;
use crate::time::Nanos;

/// Domain logic plugged into the engine.
///
/// A `World` holds *all* mutable simulation state (arena style: flat vectors
/// indexed by ids, no interior mutability). The engine guarantees `handle`
/// is called with non-decreasing `now` values.
pub trait World {
    /// The event payload type. Keep it small; it is moved through a heap.
    type Event;

    /// React to one event. New events are scheduled through `queue`; their
    /// times must be `>= now` (enforced by the engine in debug builds).
    ///
    /// Generic over the scheduler so a world runs unchanged on the binary
    /// heap or the timing wheel; implementations just call `queue.push`.
    fn handle<S: Scheduler<Self::Event>>(&mut self, now: Nanos, event: Self::Event, queue: &mut S);
}

/// Why a call to [`Simulation::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely before the deadline.
    Drained,
    /// The deadline was reached with events still pending.
    DeadlineReached,
    /// The event budget was exhausted (runaway-protection).
    BudgetExhausted,
}

/// A discrete-event simulation: a [`World`] plus a clock and a scheduler.
///
/// The scheduler type defaults to the binary-heap [`EventQueue`], so
/// `Simulation<MyWorld>` keeps meaning what it always meant; hot harnesses
/// opt into the timing wheel with
/// [`with_scheduler`](Simulation::with_scheduler).
pub struct Simulation<W: World, S: Scheduler<W::Event> = EventQueue<<W as World>::Event>> {
    world: W,
    queue: S,
    now: Nanos,
    events_handled: u64,
    #[cfg(feature = "trace")]
    occupancy_hwm: usize,
}

impl<W: World> Simulation<W> {
    /// Wrap a world with an empty heap-backed schedule at time zero.
    pub fn new(world: W) -> Self {
        Simulation::with_scheduler(world, EventQueue::new())
    }
}

impl<W: World, S: Scheduler<W::Event>> Simulation<W, S> {
    /// Wrap a world with an explicit scheduler (e.g. a
    /// [`TimingWheel`](crate::TimingWheel)) at time zero.
    pub fn with_scheduler(world: W, queue: S) -> Self {
        Simulation {
            world,
            queue,
            now: Nanos::ZERO,
            events_handled: 0,
            #[cfg(feature = "trace")]
            occupancy_hwm: 0,
        }
    }

    /// Current simulation time (the timestamp of the last handled event).
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Immutable access to the domain state.
    #[inline]
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the domain state (setup & inspection between runs).
    #[inline]
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Mutable access to the schedule (to seed initial events).
    #[inline]
    pub fn queue_mut(&mut self) -> &mut S {
        &mut self.queue
    }

    /// Simultaneous access to the world and the schedule, for setup code
    /// that reads world state while seeding events (e.g. `Network::prime`).
    #[inline]
    pub fn split_mut(&mut self) -> (&mut W, &mut S) {
        (&mut self.world, &mut self.queue)
    }

    /// Highest scheduler occupancy (pending events) observed at any
    /// dispatch, for profiling scheduler sizing. Always 0 without the
    /// `trace` cargo feature.
    #[inline]
    pub fn occupancy_high_water(&self) -> usize {
        #[cfg(feature = "trace")]
        {
            self.occupancy_hwm
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Dispatch a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.occupancy_hwm = self.occupancy_hwm.max(self.queue.len());
        }
        match self.queue.pop() {
            Some((at, ev)) => {
                debug_assert!(
                    at >= self.now,
                    "time ran backwards: popped {at:?} at now={:?}",
                    self.now
                );
                crate::audit_assert!(
                    at >= self.now,
                    "clock monotonicity: popped {at:?} while now={:?}",
                    self.now
                );
                self.now = at;
                self.events_handled += 1;
                self.world.handle(at, ev, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(Nanos::MAX)
    }

    /// Run until the queue drains or an event would fire after `deadline`
    /// (events at exactly `deadline` are processed).
    ///
    /// On `DeadlineReached` the clock is advanced to `deadline` so that
    /// post-run measurements (e.g. "queue depth at end of horizon") observe
    /// a consistent time, matching ns-3's `Simulator::Stop` semantics.
    pub fn run_until(&mut self, deadline: Nanos) -> RunOutcome {
        self.run_with_budget(deadline, u64::MAX)
    }

    /// Like [`run_until`](Self::run_until) but also stops after dispatching
    /// `budget` events. Tests use this to guard against non-terminating
    /// event storms; the figure harness uses it as a safety net.
    pub fn run_with_budget(&mut self, deadline: Nanos, budget: u64) -> RunOutcome {
        let mut remaining = budget;
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > deadline => {
                    self.now = deadline;
                    return RunOutcome::DeadlineReached;
                }
                Some(_) => {
                    if remaining == 0 {
                        return RunOutcome::BudgetExhausted;
                    }
                    remaining -= 1;
                    self.step();
                }
            }
        }
    }

    /// Tear down into the inner world (to extract results by value).
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wheel::TimingWheel;

    /// A world that records the order in which events arrive.
    struct Recorder {
        seen: Vec<(Nanos, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle<S: Scheduler<u32>>(&mut self, now: Nanos, ev: u32, _q: &mut S) {
            self.seen.push((now, ev));
        }
    }

    #[test]
    fn dispatch_order_is_time_then_fifo() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut().push(Nanos(20), 1);
        sim.queue_mut().push(Nanos(10), 2);
        sim.queue_mut().push(Nanos(20), 3);
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(
            sim.world().seen,
            vec![(Nanos(10), 2), (Nanos(20), 1), (Nanos(20), 3)]
        );
        assert_eq!(sim.events_handled(), 3);
    }

    #[test]
    fn dispatch_order_is_identical_on_the_wheel() {
        let mut sim = Simulation::with_scheduler(Recorder { seen: vec![] }, TimingWheel::new());
        sim.queue_mut().push(Nanos(20), 1);
        sim.queue_mut().push(Nanos(10), 2);
        sim.queue_mut().push(Nanos(20), 3);
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(
            sim.world().seen,
            vec![(Nanos(10), 2), (Nanos(20), 1), (Nanos(20), 3)]
        );
        assert_eq!(sim.events_handled(), 3);
    }

    #[test]
    fn deadline_stops_and_advances_clock() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut().push(Nanos(10), 1);
        sim.queue_mut().push(Nanos(100), 2);
        assert_eq!(sim.run_until(Nanos(50)), RunOutcome::DeadlineReached);
        assert_eq!(sim.world().seen, vec![(Nanos(10), 1)]);
        assert_eq!(sim.now(), Nanos(50));
        // The pending event survives and can be run later.
        assert_eq!(sim.run_until(Nanos(100)), RunOutcome::Drained);
        assert_eq!(sim.world().seen.len(), 2);
    }

    #[test]
    fn events_exactly_at_deadline_fire() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut().push(Nanos(50), 9);
        assert_eq!(sim.run_until(Nanos(50)), RunOutcome::Drained);
        assert_eq!(sim.world().seen, vec![(Nanos(50), 9)]);
    }

    /// A world that reschedules itself forever.
    struct Ticker;
    impl World for Ticker {
        type Event = ();
        fn handle<S: Scheduler<()>>(&mut self, now: Nanos, _: (), q: &mut S) {
            q.push(now + Nanos(1), ());
        }
    }

    #[test]
    fn budget_limits_runaway_worlds() {
        let mut sim = Simulation::new(Ticker);
        sim.queue_mut().push(Nanos(0), ());
        assert_eq!(
            sim.run_with_budget(Nanos::MAX, 1000),
            RunOutcome::BudgetExhausted
        );
        assert_eq!(sim.events_handled(), 1000);
    }

    #[test]
    fn step_on_empty_queue_is_false() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        assert!(!sim.step());
    }

    #[test]
    fn clock_is_monotone_across_cascades() {
        struct Cascade {
            max_seen: Nanos,
            ok: bool,
        }
        impl World for Cascade {
            type Event = u8;
            fn handle<S: Scheduler<u8>>(&mut self, now: Nanos, depth: u8, q: &mut S) {
                self.ok &= now >= self.max_seen;
                self.max_seen = self.max_seen.max(now);
                if depth > 0 {
                    // Schedule both "now" (same-time cascade) and later.
                    q.push(now, depth - 1);
                    q.push(now + Nanos(3), depth - 1);
                }
            }
        }
        let mut sim = Simulation::new(Cascade {
            max_seen: Nanos::ZERO,
            ok: true,
        });
        sim.queue_mut().push(Nanos(1), 6);
        sim.run();
        assert!(sim.world().ok, "clock went backwards");

        let mut sim = Simulation::with_scheduler(
            Cascade {
                max_seen: Nanos::ZERO,
                ok: true,
            },
            TimingWheel::new(),
        );
        sim.queue_mut().push(Nanos(1), 6);
        sim.run();
        assert!(sim.world().ok, "clock went backwards on the wheel");
    }
}
