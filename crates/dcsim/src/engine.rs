//! The simulation driver: pulls events off the calendar queue in time order
//! and dispatches them to a [`World`].

use crate::queue::EventQueue;
use crate::time::Nanos;

/// Domain logic plugged into the engine.
///
/// A `World` holds *all* mutable simulation state (arena style: flat vectors
/// indexed by ids, no interior mutability). The engine guarantees `handle`
/// is called with non-decreasing `now` values.
pub trait World {
    /// The event payload type. Keep it small; it is moved through a heap.
    type Event;

    /// React to one event. New events are scheduled through `queue`; their
    /// times must be `>= now` (enforced by the engine in debug builds).
    fn handle(&mut self, now: Nanos, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Why a call to [`Simulation::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely before the deadline.
    Drained,
    /// The deadline was reached with events still pending.
    DeadlineReached,
    /// The event budget was exhausted (runaway-protection).
    BudgetExhausted,
}

/// A discrete-event simulation: a [`World`] plus a clock and calendar queue.
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: Nanos,
    events_handled: u64,
}

impl<W: World> Simulation<W> {
    /// Wrap a world with an empty schedule at time zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: EventQueue::new(),
            now: Nanos::ZERO,
            events_handled: 0,
        }
    }

    /// Current simulation time (the timestamp of the last handled event).
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events dispatched so far.
    #[inline]
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Immutable access to the domain state.
    #[inline]
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the domain state (setup & inspection between runs).
    #[inline]
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Mutable access to the schedule (to seed initial events).
    #[inline]
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Simultaneous access to the world and the schedule, for setup code
    /// that reads world state while seeding events (e.g. `Network::prime`).
    #[inline]
    pub fn split_mut(&mut self) -> (&mut W, &mut EventQueue<W::Event>) {
        (&mut self.world, &mut self.queue)
    }

    /// Dispatch a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, ev)) => {
                debug_assert!(
                    at >= self.now,
                    "time ran backwards: popped {at:?} at now={:?}",
                    self.now
                );
                self.now = at;
                self.events_handled += 1;
                self.world.handle(at, ev, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(Nanos::MAX)
    }

    /// Run until the queue drains or an event would fire after `deadline`
    /// (events at exactly `deadline` are processed).
    ///
    /// On `DeadlineReached` the clock is advanced to `deadline` so that
    /// post-run measurements (e.g. "queue depth at end of horizon") observe
    /// a consistent time, matching ns-3's `Simulator::Stop` semantics.
    pub fn run_until(&mut self, deadline: Nanos) -> RunOutcome {
        self.run_with_budget(deadline, u64::MAX)
    }

    /// Like [`run_until`](Self::run_until) but also stops after dispatching
    /// `budget` events. Tests use this to guard against non-terminating
    /// event storms; the figure harness uses it as a safety net.
    pub fn run_with_budget(&mut self, deadline: Nanos, budget: u64) -> RunOutcome {
        let mut remaining = budget;
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > deadline => {
                    self.now = deadline;
                    return RunOutcome::DeadlineReached;
                }
                Some(_) => {
                    if remaining == 0 {
                        return RunOutcome::BudgetExhausted;
                    }
                    remaining -= 1;
                    self.step();
                }
            }
        }
    }

    /// Tear down into the inner world (to extract results by value).
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records the order in which events arrive.
    struct Recorder {
        seen: Vec<(Nanos, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: Nanos, ev: u32, _q: &mut EventQueue<u32>) {
            self.seen.push((now, ev));
        }
    }

    #[test]
    fn dispatch_order_is_time_then_fifo() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut().push(Nanos(20), 1);
        sim.queue_mut().push(Nanos(10), 2);
        sim.queue_mut().push(Nanos(20), 3);
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(
            sim.world().seen,
            vec![(Nanos(10), 2), (Nanos(20), 1), (Nanos(20), 3)]
        );
        assert_eq!(sim.events_handled(), 3);
    }

    #[test]
    fn deadline_stops_and_advances_clock() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut().push(Nanos(10), 1);
        sim.queue_mut().push(Nanos(100), 2);
        assert_eq!(sim.run_until(Nanos(50)), RunOutcome::DeadlineReached);
        assert_eq!(sim.world().seen, vec![(Nanos(10), 1)]);
        assert_eq!(sim.now(), Nanos(50));
        // The pending event survives and can be run later.
        assert_eq!(sim.run_until(Nanos(100)), RunOutcome::Drained);
        assert_eq!(sim.world().seen.len(), 2);
    }

    #[test]
    fn events_exactly_at_deadline_fire() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut().push(Nanos(50), 9);
        assert_eq!(sim.run_until(Nanos(50)), RunOutcome::Drained);
        assert_eq!(sim.world().seen, vec![(Nanos(50), 9)]);
    }

    /// A world that reschedules itself forever.
    struct Ticker;
    impl World for Ticker {
        type Event = ();
        fn handle(&mut self, now: Nanos, _: (), q: &mut EventQueue<()>) {
            q.push(now + Nanos(1), ());
        }
    }

    #[test]
    fn budget_limits_runaway_worlds() {
        let mut sim = Simulation::new(Ticker);
        sim.queue_mut().push(Nanos(0), ());
        assert_eq!(
            sim.run_with_budget(Nanos::MAX, 1000),
            RunOutcome::BudgetExhausted
        );
        assert_eq!(sim.events_handled(), 1000);
    }

    #[test]
    fn step_on_empty_queue_is_false() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        assert!(!sim.step());
    }

    #[test]
    fn clock_is_monotone_across_cascades() {
        struct Cascade {
            max_seen: Nanos,
            ok: bool,
        }
        impl World for Cascade {
            type Event = u8;
            fn handle(&mut self, now: Nanos, depth: u8, q: &mut EventQueue<u8>) {
                self.ok &= now >= self.max_seen;
                self.max_seen = self.max_seen.max(now);
                if depth > 0 {
                    // Schedule both "now" (same-time cascade) and later.
                    q.push(now, depth - 1);
                    q.push(now + Nanos(3), depth - 1);
                }
            }
        }
        let mut sim = Simulation::new(Cascade {
            max_seen: Nanos::ZERO,
            ok: true,
        });
        sim.queue_mut().push(Nanos(1), 6);
        sim.run();
        assert!(sim.world().ok, "clock went backwards");
    }
}
